// Package workload generates the update streams the experiments drive
// through both systems. The primary generator is the paper's SCM
// pattern (§4): at site 0 (the maker) stock increases "by at most 20% of
// the initial amount of data randomly"; at the retailer sites it
// decreases by at most 10%. Additional generators (skewed key choice,
// read-mixed) support the extension studies.
//
// Generators are deterministic from their seed and are pure producers:
// the same generator instance drives the proposed and the conventional
// system with the identical operation sequence.
package workload

import (
	"fmt"

	"avdb/internal/rng"
)

// Op is one generated operation. Delta is meaningless when Read is
// set: a read observes the key's stock at the originating site instead
// of changing it.
type Op struct {
	Site  int    // originating site
	Key   string // product key
	Delta int64  // signed stock change (writes only)
	Read  bool   // stock lookup instead of an update
}

// Generator produces a deterministic stream of operations.
type Generator interface {
	// Next returns the next operation.
	Next() Op
}

// SCMConfig parameterizes the paper's workload.
type SCMConfig struct {
	// Sites is the number of sites; site 0 is the maker.
	Sites int
	// Keys is the product catalog.
	Keys []string
	// InitialAmount is each product's starting stock (the base for the
	// percentage bounds).
	InitialAmount int64
	// MakerIncreaseFrac bounds the maker's increments: delta is uniform
	// in [1, frac*InitialAmount] (paper: 0.2).
	MakerIncreaseFrac float64
	// RetailerDecreaseFrac bounds the retailers' decrements: delta is
	// uniform in [-frac*InitialAmount, -1] (paper: 0.1).
	RetailerDecreaseFrac float64
	// Seed makes the stream reproducible.
	Seed uint64
	// RoundRobinSites, when set, cycles through sites 0,1,...,N-1 instead
	// of choosing uniformly at random (an alternative reading of the
	// paper's unspecified update interleaving).
	RoundRobinSites bool
}

// SCM is the paper's workload generator.
type SCM struct {
	cfg      SCMConfig
	r        *rng.Rand
	makerMax int64
	retMax   int64
	rr       int
}

// NewSCM builds the generator, applying the paper's defaults for zero
// fields (20% / 10%).
func NewSCM(cfg SCMConfig) (*SCM, error) {
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("workload: need >= 1 site")
	}
	if len(cfg.Keys) == 0 {
		return nil, fmt.Errorf("workload: need >= 1 key")
	}
	if cfg.InitialAmount < 1 {
		return nil, fmt.Errorf("workload: need positive initial amount")
	}
	if cfg.MakerIncreaseFrac == 0 {
		cfg.MakerIncreaseFrac = 0.20
	}
	if cfg.RetailerDecreaseFrac == 0 {
		cfg.RetailerDecreaseFrac = 0.10
	}
	g := &SCM{
		cfg:      cfg,
		r:        rng.New(cfg.Seed),
		makerMax: int64(cfg.MakerIncreaseFrac * float64(cfg.InitialAmount)),
		retMax:   int64(cfg.RetailerDecreaseFrac * float64(cfg.InitialAmount)),
	}
	if g.makerMax < 1 {
		g.makerMax = 1
	}
	if g.retMax < 1 {
		g.retMax = 1
	}
	return g, nil
}

// Next implements Generator.
func (g *SCM) Next() Op {
	var site int
	if g.cfg.RoundRobinSites {
		site = g.rr % g.cfg.Sites
		g.rr++
	} else {
		site = g.r.Intn(g.cfg.Sites)
	}
	key := g.cfg.Keys[g.r.Intn(len(g.cfg.Keys))]
	var delta int64
	if site == 0 {
		delta = g.r.Range(1, g.makerMax)
	} else {
		delta = -g.r.Range(1, g.retMax)
	}
	return Op{Site: site, Key: key, Delta: delta}
}

// SkewedConfig parameterizes a hot-key workload: a fraction of the
// operations concentrates on a small fraction of the keys (an 80/20-style
// contention study the paper's setup cannot express).
type SkewedConfig struct {
	SCMConfig
	// HotKeyFrac of the keys receive HotOpFrac of the operations.
	HotKeyFrac float64
	HotOpFrac  float64
}

// Skewed wraps SCM with a biased key choice.
type Skewed struct {
	inner *SCM
	cfg   SkewedConfig
	r     *rng.Rand
	hot   []string
	cold  []string
}

// NewSkewed builds a skewed generator (defaults: 20% of keys take 80% of
// the operations).
func NewSkewed(cfg SkewedConfig) (*Skewed, error) {
	inner, err := NewSCM(cfg.SCMConfig)
	if err != nil {
		return nil, err
	}
	if cfg.HotKeyFrac == 0 {
		cfg.HotKeyFrac = 0.2
	}
	if cfg.HotOpFrac == 0 {
		cfg.HotOpFrac = 0.8
	}
	nHot := int(cfg.HotKeyFrac * float64(len(cfg.Keys)))
	if nHot < 1 {
		nHot = 1
	}
	if nHot > len(cfg.Keys) {
		nHot = len(cfg.Keys)
	}
	return &Skewed{
		inner: inner,
		cfg:   cfg,
		r:     rng.New(cfg.Seed ^ 0xdead),
		hot:   cfg.Keys[:nHot],
		cold:  cfg.Keys[nHot:],
	}, nil
}

// Next implements Generator.
func (s *Skewed) Next() Op {
	op := s.inner.Next()
	if s.r.Bool(s.cfg.HotOpFrac) || len(s.cold) == 0 {
		op.Key = s.hot[s.r.Intn(len(s.hot))]
	} else {
		op.Key = s.cold[s.r.Intn(len(s.cold))]
	}
	return op
}

// ReadMixConfig parameterizes a read-heavy mix layered over any write
// generator (the avbench -reads study).
type ReadMixConfig struct {
	// Inner produces the write stream.
	Inner Generator
	// ReadFrac of the operations are reads (default 0.9).
	ReadFrac float64
	// Sites and Keys bound the reads' independent site/key draws.
	Sites int
	Keys  []string
	// Seed makes the read stream reproducible independently of Inner's.
	Seed uint64
}

// ReadMix interleaves reads into a write stream: each Next draw is a
// read with probability ReadFrac, choosing its own site and key, and
// otherwise defers to the inner write generator. The write substream
// is therefore identical to running Inner alone — adding reads never
// perturbs the write schedule.
type ReadMix struct {
	cfg ReadMixConfig
	r   *rng.Rand
}

// NewReadMix builds the mixed generator.
func NewReadMix(cfg ReadMixConfig) (*ReadMix, error) {
	if cfg.Inner == nil {
		return nil, fmt.Errorf("workload: read mix needs an inner write generator")
	}
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("workload: need >= 1 site")
	}
	if len(cfg.Keys) == 0 {
		return nil, fmt.Errorf("workload: need >= 1 key")
	}
	if cfg.ReadFrac == 0 {
		cfg.ReadFrac = 0.9
	}
	if cfg.ReadFrac < 0 || cfg.ReadFrac > 1 {
		return nil, fmt.Errorf("workload: read fraction %v outside [0, 1]", cfg.ReadFrac)
	}
	return &ReadMix{cfg: cfg, r: rng.New(cfg.Seed ^ 0x4EAD)}, nil
}

// Next implements Generator.
func (m *ReadMix) Next() Op {
	if m.r.Bool(m.cfg.ReadFrac) {
		return Op{
			Site: m.r.Intn(m.cfg.Sites),
			Key:  m.cfg.Keys[m.r.Intn(len(m.cfg.Keys))],
			Read: true,
		}
	}
	return m.cfg.Inner.Next()
}

// Keys builds the canonical catalog key list used by clusters and
// baselines (product-0000 ... product-NNNN).
func Keys(items int) []string {
	out := make([]string, items)
	for i := range out {
		out[i] = fmt.Sprintf("product-%04d", i)
	}
	return out
}
