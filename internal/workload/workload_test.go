package workload

import (
	"testing"
)

func scmCfg() SCMConfig {
	return SCMConfig{
		Sites:         3,
		Keys:          Keys(10),
		InitialAmount: 1000,
		Seed:          1,
	}
}

func TestKeysNaming(t *testing.T) {
	ks := Keys(3)
	if len(ks) != 3 || ks[0] != "product-0000" || ks[2] != "product-0002" {
		t.Fatalf("keys = %v", ks)
	}
}

func TestSCMDeterminism(t *testing.T) {
	a, _ := NewSCM(scmCfg())
	b, _ := NewSCM(scmCfg())
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at op %d", i)
		}
	}
}

func TestSCMPaperBounds(t *testing.T) {
	g, err := NewSCM(scmCfg())
	if err != nil {
		t.Fatal(err)
	}
	sawMaker, sawRetail := false, false
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Site < 0 || op.Site >= 3 {
			t.Fatalf("site %d out of range", op.Site)
		}
		if op.Site == 0 {
			sawMaker = true
			if op.Delta < 1 || op.Delta > 200 { // 20% of 1000
				t.Fatalf("maker delta %d outside [1,200]", op.Delta)
			}
		} else {
			sawRetail = true
			if op.Delta > -1 || op.Delta < -100 { // 10% of 1000
				t.Fatalf("retailer delta %d outside [-100,-1]", op.Delta)
			}
		}
	}
	if !sawMaker || !sawRetail {
		t.Fatal("one site class never selected")
	}
}

func TestSCMSiteDistributionRoughlyUniform(t *testing.T) {
	g, _ := NewSCM(scmCfg())
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[g.Next().Site]++
	}
	for s, c := range counts {
		if c < n/3-n/20 || c > n/3+n/20 {
			t.Fatalf("site %d got %d of %d ops", s, c, n)
		}
	}
}

func TestSCMRoundRobin(t *testing.T) {
	cfg := scmCfg()
	cfg.RoundRobinSites = true
	g, _ := NewSCM(cfg)
	for i := 0; i < 12; i++ {
		if op := g.Next(); op.Site != i%3 {
			t.Fatalf("op %d site = %d, want %d", i, op.Site, i%3)
		}
	}
}

func TestSCMCustomFractions(t *testing.T) {
	cfg := scmCfg()
	cfg.MakerIncreaseFrac = 0.5
	cfg.RetailerDecreaseFrac = 0.01
	g, _ := NewSCM(cfg)
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Site == 0 && op.Delta > 500 {
			t.Fatalf("maker delta %d > 500", op.Delta)
		}
		if op.Site != 0 && op.Delta < -10 {
			t.Fatalf("retailer delta %d < -10", op.Delta)
		}
	}
}

func TestSCMTinyInitialAmount(t *testing.T) {
	cfg := scmCfg()
	cfg.InitialAmount = 3 // fractions round to < 1; clamp to 1
	g, err := NewSCM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		op := g.Next()
		if op.Delta == 0 {
			t.Fatal("zero delta generated")
		}
	}
}

func TestSCMConfigValidation(t *testing.T) {
	bad := scmCfg()
	bad.Sites = 0
	if _, err := NewSCM(bad); err == nil {
		t.Fatal("0 sites accepted")
	}
	bad = scmCfg()
	bad.Keys = nil
	if _, err := NewSCM(bad); err == nil {
		t.Fatal("no keys accepted")
	}
	bad = scmCfg()
	bad.InitialAmount = 0
	if _, err := NewSCM(bad); err == nil {
		t.Fatal("0 initial accepted")
	}
}

func TestSkewedConcentratesOps(t *testing.T) {
	g, err := NewSkewed(SkewedConfig{SCMConfig: scmCfg()})
	if err != nil {
		t.Fatal(err)
	}
	hot := map[string]bool{"product-0000": true, "product-0001": true} // 20% of 10
	hotOps := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if hot[g.Next().Key] {
			hotOps++
		}
	}
	frac := float64(hotOps) / n
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("hot fraction = %v, want ~0.8", frac)
	}
}

func TestSkewedSingleKey(t *testing.T) {
	cfg := scmCfg()
	cfg.Keys = Keys(1)
	g, err := NewSkewed(SkewedConfig{SCMConfig: cfg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if op := g.Next(); op.Key != "product-0000" {
			t.Fatalf("key = %s", op.Key)
		}
	}
}

func TestReadMixFractionAndWriteStream(t *testing.T) {
	cfg := scmCfg()
	mkInner := func() *SCM {
		g, err := NewSCM(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	m, err := NewReadMix(ReadMixConfig{
		Inner: mkInner(), ReadFrac: 0.75, Sites: cfg.Sites, Keys: cfg.Keys, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	reads := 0
	var writes []Op
	for i := 0; i < n; i++ {
		op := m.Next()
		if op.Read {
			reads++
			if op.Delta != 0 {
				t.Fatalf("read carries delta %d", op.Delta)
			}
			if op.Site < 0 || op.Site >= cfg.Sites {
				t.Fatalf("read site %d out of range", op.Site)
			}
		} else {
			writes = append(writes, op)
		}
	}
	if frac := float64(reads) / n; frac < 0.70 || frac > 0.80 {
		t.Fatalf("read fraction = %v, want ~0.75", frac)
	}
	// The write substream must be exactly what the inner generator
	// would have produced alone: reads never perturb the write schedule.
	ref := mkInner()
	for i, w := range writes {
		if want := ref.Next(); w != want {
			t.Fatalf("write %d = %+v, inner alone gives %+v", i, w, want)
		}
	}
}

func TestReadMixValidation(t *testing.T) {
	g, _ := NewSCM(scmCfg())
	if _, err := NewReadMix(ReadMixConfig{Sites: 2, Keys: Keys(1)}); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := NewReadMix(ReadMixConfig{Inner: g, Sites: 2, Keys: Keys(1), ReadFrac: 1.5}); err == nil {
		t.Fatal("read fraction 1.5 accepted")
	}
}
