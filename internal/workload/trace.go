package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace support: an operation stream can be recorded to a plain-text
// trace ("site key delta" per line) and replayed later, so a workload
// observed once — synthetic or captured from a real deployment — can be
// re-driven identically through both systems, across machines, or after
// code changes.

// WriteTrace writes ops to w in trace format.
func WriteTrace(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		if _, err := fmt.Fprintf(bw, "%d %s %d\n", op.Site, op.Key, op.Delta); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace (or by hand). Blank
// lines and lines starting with '#' are skipped.
func ReadTrace(r io.Reader) ([]Op, error) {
	sc := bufio.NewScanner(r)
	var ops []Op
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("workload: trace line %d: want 'site key delta', got %q", line, text)
		}
		site, err := strconv.Atoi(fields[0])
		if err != nil || site < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad site %q", line, fields[0])
		}
		delta, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad delta %q", line, fields[2])
		}
		ops = append(ops, Op{Site: site, Key: fields[1], Delta: delta})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// Replay generates a recorded op sequence verbatim, then (if Loop is
// set) cycles; otherwise Next panics past the end — callers bound their
// loops by Len.
type Replay struct {
	ops  []Op
	i    int
	Loop bool
}

// NewReplay wraps ops as a Generator.
func NewReplay(ops []Op) *Replay { return &Replay{ops: ops} }

// Len returns the recorded length.
func (r *Replay) Len() int { return len(r.ops) }

// Next implements Generator.
func (r *Replay) Next() Op {
	if r.i >= len(r.ops) {
		if !r.Loop || len(r.ops) == 0 {
			panic("workload: replay exhausted")
		}
		r.i = 0
	}
	op := r.ops[r.i]
	r.i++
	return op
}

// Tee passes through an inner generator while recording every op.
type Tee struct {
	Inner    Generator
	Recorded []Op
}

// NewTee wraps gen.
func NewTee(gen Generator) *Tee { return &Tee{Inner: gen} }

// Next implements Generator.
func (t *Tee) Next() Op {
	op := t.Inner.Next()
	t.Recorded = append(t.Recorded, op)
	return op
}
