package workload

import (
	"sort"
	"testing"
)

func zipfCfg(keys int) ZipfConfig {
	return ZipfConfig{
		SCMConfig: SCMConfig{
			Sites:         6,
			Keys:          Keys(keys),
			InitialAmount: 400,
			Seed:          11,
		},
	}
}

// TestZipfSkewConcentration checks the sampler actually skews: under
// theta 0.99 the hottest 1% of keys must absorb far more than 1% of the
// operations, and theta near 0 must stay close to uniform.
func TestZipfSkewConcentration(t *testing.T) {
	const keys, draws = 10000, 200000
	mass := func(theta float64) float64 {
		cfg := zipfCfg(keys)
		cfg.Theta = theta
		g, err := NewZipf(cfg)
		if err != nil {
			t.Fatal(err)
		}
		freq := map[string]int{}
		for i := 0; i < draws; i++ {
			freq[g.Next().Key]++
		}
		counts := make([]int, 0, len(freq))
		for _, c := range freq {
			counts = append(counts, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		top := 0
		for i := 0; i < keys/100 && i < len(counts); i++ {
			top += counts[i]
		}
		return float64(top) / draws
	}
	if hot := mass(0.99); hot < 0.25 {
		t.Errorf("theta 0.99: top 1%% of keys got %.3f of ops, want >= 0.25", hot)
	}
	if flat := mass(0.01); flat > 0.05 {
		t.Errorf("theta 0.01: top 1%% of keys got %.3f of ops, want near uniform", flat)
	}
}

// TestZipfSkewLeavesSiteStreamAlone pins the substream independence
// contract: changing theta or the key-space size must leave the
// site/delta schedule byte-identical.
func TestZipfSkewLeavesSiteStreamAlone(t *testing.T) {
	variants := []ZipfConfig{}
	for _, theta := range []float64{0.5, 0.99} {
		for _, keys := range []int{100, 100000} {
			cfg := zipfCfg(keys)
			cfg.Theta = theta
			variants = append(variants, cfg)
		}
	}
	type sd struct {
		site  int
		delta int64
	}
	var ref []sd
	for vi, cfg := range variants {
		g, err := NewZipf(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]sd, 500)
		for i := range got {
			op := g.Next()
			got[i] = sd{op.Site, op.Delta}
		}
		if vi == 0 {
			ref = got
			continue
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("variant %d (theta=%v keys=%d): op %d site/delta %v, want %v",
					vi, cfg.Theta, len(cfg.Keys), i, got[i], ref[i])
			}
		}
	}
}

// TestZipfSiteAffinity checks the affinity knob: at 1.0 every op lands
// on its key's home site (with the delta sign following the final
// site), and enabling it never changes which keys are drawn.
func TestZipfSiteAffinity(t *testing.T) {
	home := func(key string) int { return int(key[len(key)-1]-'0') % 6 }
	base := zipfCfg(1000)
	g0, err := NewZipf(base)
	if err != nil {
		t.Fatal(err)
	}
	aff := base
	aff.SiteAffinity = 1.0
	aff.HomeSite = home
	g1, err := NewZipf(aff)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		a, b := g0.Next(), g1.Next()
		if a.Key != b.Key {
			t.Fatalf("op %d: affinity perturbed key stream: %q vs %q", i, a.Key, b.Key)
		}
		if want := home(b.Key); b.Site != want {
			t.Fatalf("op %d: affinity 1.0 put %q at site %d, home is %d", i, b.Key, b.Site, want)
		}
		if b.Site == 0 && b.Delta <= 0 {
			t.Fatalf("op %d: maker-site op has non-positive delta %d", i, b.Delta)
		}
		if b.Site != 0 && b.Delta >= 0 {
			t.Fatalf("op %d: retailer-site op has non-negative delta %d", i, b.Delta)
		}
	}
}

// TestZipfRejectsBadConfig covers the validation edges.
func TestZipfRejectsBadConfig(t *testing.T) {
	bad := zipfCfg(10)
	bad.Theta = 1.0
	if _, err := NewZipf(bad); err == nil {
		t.Error("theta 1.0 accepted")
	}
	bad = zipfCfg(10)
	bad.SiteAffinity = 0.5
	if _, err := NewZipf(bad); err == nil {
		t.Error("affinity without HomeSite accepted")
	}
}
