package wire

import "fmt"

// SiteID identifies a site (a participant database node). Site 0 is by
// convention the base site (the maker in the paper's SCM model, hosting
// the primary copy used by Immediate Update).
type SiteID uint32

// Kind tags a protocol message type on the wire.
type Kind uint8

// Message kinds. The numeric values are part of the wire format; only
// append, never renumber.
const (
	KindInvalid Kind = iota

	// Allowable-Volume management (Delay Update with AV transfer, Fig. 4).
	KindAVRequest // ask a peer for AV of one key
	KindAVReply   // grant (possibly 0 = refusal) plus gossiped AV view

	// Lazy propagation of committed Delay-Update deltas.
	KindDeltaSync // batch of (origin, seq, key, delta) entries
	KindDeltaAck  // cumulative ack of an origin's delta sequence

	// Immediate Update: primary-copy two-phase commit (Fig. 5).
	KindIUPrepare  // phase 1: lock + tentatively apply
	KindIUVote     // participant's ready / refuse vote
	KindIUDecision // phase 2: commit or abort
	KindIUAck      // participant acknowledgement of the decision

	// Conventional centralized baseline.
	KindCentralUpdate
	KindCentralReply

	// Client/remote reads of the local replica.
	KindRead
	KindReadReply

	// Pull-based convergence: ask a peer to hand over the deltas it has
	// not yet pushed to us (reply is a DeltaSync).
	KindSyncPull

	// Failure detection: lightweight liveness probes between peers.
	KindPing
	KindPong

	// Escrowed AV transfer resolution: the requester settles (keeps) or
	// cancels (returns) a grant the granter parked in escrow.
	KindAVSettle
	KindAVSettleAck

	// Partitioned routing: an update forwarded to a replica of the key's
	// partition, and its outcome (possibly a map redirect).
	KindRouteUpdate
	KindRouteReply
)

var kindNames = map[Kind]string{
	KindAVRequest:     "av.request",
	KindAVReply:       "av.reply",
	KindDeltaSync:     "delta.sync",
	KindDeltaAck:      "delta.ack",
	KindIUPrepare:     "iu.prepare",
	KindIUVote:        "iu.vote",
	KindIUDecision:    "iu.decision",
	KindIUAck:         "iu.ack",
	KindCentralUpdate: "central.update",
	KindCentralReply:  "central.reply",
	KindRead:          "read",
	KindReadReply:     "read.reply",
	KindSyncPull:      "sync.pull",
	KindPing:          "ping",
	KindPong:          "pong",
	KindAVSettle:      "av.settle",
	KindAVSettleAck:   "av.settle.ack",
	KindRouteUpdate:   "route.update",
	KindRouteReply:    "route.reply",
}

// String returns the dotted metric name for the kind ("av.request", ...).
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Message is any protocol payload that can ride in an Envelope.
type Message interface {
	// Kind returns the wire tag for the concrete type.
	Kind() Kind
	// encode appends the payload (excluding the kind tag) to b.
	encode(b []byte) []byte
	// decode parses the payload from r.
	decode(r *reader) error
}

// AVInfo is one gossiped observation: "site holds avail AV for key".
// Peers piggyback their view on AV replies so selectors can pick targets
// from (possibly stale) information, exactly as the paper describes.
type AVInfo struct {
	Site  SiteID
	Key   string
	Avail int64
}

// AVRequest asks the receiver to transfer AV for Key. Amount is the
// shortage the requester still needs (the SODA'99 "deciding" output).
//
// Xfer, when nonzero, is a requester-unique transfer ID asking the
// granter to park the grant in escrow until the requester settles or
// cancels it (AVSettle) — the recoverable-transfer protocol that keeps
// the AV sum conserved when replies are lost. Zero keeps the original
// fire-and-forget transfer and encodes byte-identically to the legacy
// format.
type AVRequest struct {
	Key    string
	Amount int64
	Xfer   uint64
}

// Kind implements Message.
func (*AVRequest) Kind() Kind { return KindAVRequest }

func (m *AVRequest) encode(b []byte) []byte {
	b = appendString(b, m.Key)
	b = appendVarint(b, m.Amount)
	if m.Xfer != 0 {
		b = appendUvarint(b, m.Xfer)
	}
	return b
}

func (m *AVRequest) decode(r *reader) (err error) {
	if m.Key, err = r.str(); err != nil {
		return err
	}
	if m.Amount, err = r.varint(); err != nil {
		return err
	}
	if r.remaining() > 0 {
		if m.Xfer, err = r.uvarint(); err != nil {
			return err
		}
		if m.Xfer == 0 {
			return ErrNonCanonical
		}
	}
	return err
}

// AVReply grants Granted units of AV for Key (0 means the holder refused
// or had nothing) and piggybacks the granter's view of AV holdings.
type AVReply struct {
	Key     string
	Granted int64
	View    []AVInfo
}

// Kind implements Message.
func (*AVReply) Kind() Kind { return KindAVReply }

func (m *AVReply) encode(b []byte) []byte {
	b = appendString(b, m.Key)
	b = appendVarint(b, m.Granted)
	b = appendUvarint(b, uint64(len(m.View)))
	for _, v := range m.View {
		b = appendUvarint(b, uint64(v.Site))
		b = appendString(b, v.Key)
		b = appendVarint(b, v.Avail)
	}
	return b
}

func (m *AVReply) decode(r *reader) (err error) {
	if m.Key, err = r.str(); err != nil {
		return err
	}
	if m.Granted, err = r.varint(); err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > uint64(r.remaining()) { // each entry takes >= 3 bytes; cheap bound
		return ErrTooLong
	}
	m.View = make([]AVInfo, n)
	for i := range m.View {
		site, err := r.uvarint()
		if err != nil {
			return err
		}
		m.View[i].Site = SiteID(site)
		if m.View[i].Key, err = r.str(); err != nil {
			return err
		}
		if m.View[i].Avail, err = r.varint(); err != nil {
			return err
		}
	}
	return nil
}

// Delta is one committed Delay-Update delta in an origin site's log.
type Delta struct {
	Seq    uint64 // position in the origin's delta log, starting at 1
	Key    string
	Amount int64
}

// DeltaSync carries a batch of deltas from Origin's log for lazy replica
// convergence.
//
// FirstSeq selects how receivers apply the batch. Zero (the original
// format's implicit value) means the entries are verbatim log records:
// the receiver applies the contiguous new prefix, deduplicating by Seq.
// Nonzero marks a coalesced window: the sender merged same-key deltas
// covering origin sequences [FirstSeq, max entry Seq], so individual
// sequences are no longer recoverable and the receiver must apply the
// whole batch if and only if FirstSeq is exactly one past its applied
// watermark, acknowledging its current watermark otherwise so the
// sender realigns on the next flush.
//
// WindowTop, when nonzero, is the last origin sequence the coalesced
// window covers. A partially replicating sender (partitioned clusters)
// filters out entries for partitions the receiver does not host, so
// the window may end past the highest surviving entry — or contain no
// entries at all — and the receiver must still advance its watermark to
// WindowTop or the sender would retransmit the filtered window forever.
// Zero (encoded by omission, byte-identical to the legacy format) means
// the window ends at the highest entry Seq, the full-replication rule.
type DeltaSync struct {
	Origin    SiteID
	FirstSeq  uint64
	Deltas    []Delta
	WindowTop uint64
}

// Kind implements Message.
func (*DeltaSync) Kind() Kind { return KindDeltaSync }

func (m *DeltaSync) encode(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Origin))
	b = appendUvarint(b, m.FirstSeq)
	b = appendUvarint(b, uint64(len(m.Deltas)))
	for _, d := range m.Deltas {
		b = appendUvarint(b, d.Seq)
		b = appendString(b, d.Key)
		b = appendVarint(b, d.Amount)
	}
	if m.WindowTop != 0 {
		b = appendUvarint(b, m.WindowTop)
	}
	return b
}

func (m *DeltaSync) decode(r *reader) error {
	origin, err := r.uvarint()
	if err != nil {
		return err
	}
	m.Origin = SiteID(origin)
	if m.FirstSeq, err = r.uvarint(); err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > uint64(r.remaining()) {
		return ErrTooLong
	}
	m.Deltas = make([]Delta, n)
	for i := range m.Deltas {
		if m.Deltas[i].Seq, err = r.uvarint(); err != nil {
			return err
		}
		if m.Deltas[i].Key, err = r.str(); err != nil {
			return err
		}
		if m.Deltas[i].Amount, err = r.varint(); err != nil {
			return err
		}
	}
	if r.remaining() > 0 {
		if m.WindowTop, err = r.uvarint(); err != nil {
			return err
		}
		if m.WindowTop == 0 {
			return ErrNonCanonical
		}
	}
	return nil
}

// DeltaAck acknowledges that the sender has applied Origin's deltas up to
// and including UpTo.
type DeltaAck struct {
	Origin SiteID
	UpTo   uint64
}

// Kind implements Message.
func (*DeltaAck) Kind() Kind { return KindDeltaAck }

func (m *DeltaAck) encode(b []byte) []byte {
	b = appendUvarint(b, uint64(m.Origin))
	return appendUvarint(b, m.UpTo)
}

func (m *DeltaAck) decode(r *reader) error {
	origin, err := r.uvarint()
	if err != nil {
		return err
	}
	m.Origin = SiteID(origin)
	m.UpTo, err = r.uvarint()
	return err
}

// IUPrepare is phase 1 of an Immediate Update: the coordinator asks every
// site to lock Key and tentatively apply Delta.
type IUPrepare struct {
	TxnID uint64
	Coord SiteID
	Key   string
	Delta int64
}

// Kind implements Message.
func (*IUPrepare) Kind() Kind { return KindIUPrepare }

func (m *IUPrepare) encode(b []byte) []byte {
	b = appendUvarint(b, m.TxnID)
	b = appendUvarint(b, uint64(m.Coord))
	b = appendString(b, m.Key)
	return appendVarint(b, m.Delta)
}

func (m *IUPrepare) decode(r *reader) (err error) {
	if m.TxnID, err = r.uvarint(); err != nil {
		return err
	}
	coord, err := r.uvarint()
	if err != nil {
		return err
	}
	m.Coord = SiteID(coord)
	if m.Key, err = r.str(); err != nil {
		return err
	}
	m.Delta, err = r.varint()
	return err
}

// IUVote is a participant's phase-1 vote. Epoch, when non-zero, is the
// participant's open commit epoch at prepare time (see internal/epoch):
// it lets the coordinator observe how 2PC rounds pipeline across epoch
// boundaries. A zero Epoch (encoded by omission, so non-epoch peers
// interoperate unchanged) means the participant does not run epochs.
type IUVote struct {
	TxnID  uint64
	OK     bool
	Reason string // populated when OK is false
	Epoch  uint64 // participant's open epoch at prepare (0 = epochs off)
}

// Kind implements Message.
func (*IUVote) Kind() Kind { return KindIUVote }

func (m *IUVote) encode(b []byte) []byte {
	b = appendUvarint(b, m.TxnID)
	b = appendBool(b, m.OK)
	b = appendString(b, m.Reason)
	if m.Epoch != 0 {
		b = appendUvarint(b, m.Epoch)
	}
	return b
}

func (m *IUVote) decode(r *reader) (err error) {
	if m.TxnID, err = r.uvarint(); err != nil {
		return err
	}
	if m.OK, err = r.boolean(); err != nil {
		return err
	}
	if m.Reason, err = r.str(); err != nil {
		return err
	}
	if r.remaining() > 0 {
		if m.Epoch, err = r.uvarint(); err != nil {
			return err
		}
		if m.Epoch == 0 {
			return ErrNonCanonical
		}
	}
	return nil
}

// IUDecision is phase 2: commit (true) or abort (false).
type IUDecision struct {
	TxnID  uint64
	Commit bool
}

// Kind implements Message.
func (*IUDecision) Kind() Kind { return KindIUDecision }

func (m *IUDecision) encode(b []byte) []byte {
	b = appendUvarint(b, m.TxnID)
	return appendBool(b, m.Commit)
}

func (m *IUDecision) decode(r *reader) (err error) {
	if m.TxnID, err = r.uvarint(); err != nil {
		return err
	}
	m.Commit, err = r.boolean()
	return err
}

// IUAck acknowledges a decision. The paper has the requesting accelerator
// judge completion from the base site's message; the coordinator therefore
// waits for at least the base site's ack. Epoch, when non-zero, is the
// durable epoch that covered the participant's commit — the ack itself is
// released only once that epoch's covering LSN is durable, so an epoch-
// carrying OK ack is as strong as a per-transaction fsync ack. Zero
// (encoded by omission) means the participant does not run epochs.
type IUAck struct {
	TxnID uint64
	OK    bool
	Epoch uint64 // durable epoch covering the commit (0 = epochs off)
}

// Kind implements Message.
func (*IUAck) Kind() Kind { return KindIUAck }

func (m *IUAck) encode(b []byte) []byte {
	b = appendUvarint(b, m.TxnID)
	b = appendBool(b, m.OK)
	if m.Epoch != 0 {
		b = appendUvarint(b, m.Epoch)
	}
	return b
}

func (m *IUAck) decode(r *reader) (err error) {
	if m.TxnID, err = r.uvarint(); err != nil {
		return err
	}
	if m.OK, err = r.boolean(); err != nil {
		return err
	}
	if r.remaining() > 0 {
		if m.Epoch, err = r.uvarint(); err != nil {
			return err
		}
		if m.Epoch == 0 {
			return ErrNonCanonical
		}
	}
	return nil
}

// CentralUpdate is the conventional baseline: every update is shipped to
// the central site.
type CentralUpdate struct {
	Key   string
	Delta int64
}

// Kind implements Message.
func (*CentralUpdate) Kind() Kind { return KindCentralUpdate }

func (m *CentralUpdate) encode(b []byte) []byte {
	b = appendString(b, m.Key)
	return appendVarint(b, m.Delta)
}

func (m *CentralUpdate) decode(r *reader) (err error) {
	if m.Key, err = r.str(); err != nil {
		return err
	}
	m.Delta, err = r.varint()
	return err
}

// CentralReply reports the outcome of a CentralUpdate.
type CentralReply struct {
	OK       bool
	NewValue int64
	Reason   string
}

// Kind implements Message.
func (*CentralReply) Kind() Kind { return KindCentralReply }

func (m *CentralReply) encode(b []byte) []byte {
	b = appendBool(b, m.OK)
	b = appendVarint(b, m.NewValue)
	return appendString(b, m.Reason)
}

func (m *CentralReply) decode(r *reader) (err error) {
	if m.OK, err = r.boolean(); err != nil {
		return err
	}
	if m.NewValue, err = r.varint(); err != nil {
		return err
	}
	m.Reason, err = r.str()
	return err
}

// Read asks a site for its current local value of Key.
type Read struct {
	Key string
}

// Kind implements Message.
func (*Read) Kind() Kind { return KindRead }

func (m *Read) encode(b []byte) []byte { return appendString(b, m.Key) }

func (m *Read) decode(r *reader) (err error) {
	m.Key, err = r.str()
	return err
}

// ReadReply returns a site's local value of a key.
type ReadReply struct {
	OK    bool
	Value int64
}

// Kind implements Message.
func (*ReadReply) Kind() Kind { return KindReadReply }

func (m *ReadReply) encode(b []byte) []byte {
	b = appendBool(b, m.OK)
	return appendVarint(b, m.Value)
}

func (m *ReadReply) decode(r *reader) (err error) {
	if m.OK, err = r.boolean(); err != nil {
		return err
	}
	m.Value, err = r.varint()
	return err
}

// SyncPull asks the receiver to reply with the deltas it has not yet
// delivered to the requester (a DeltaSync). Used by pull-based
// convergence and fresh reads.
type SyncPull struct{}

// Kind implements Message.
func (*SyncPull) Kind() Kind { return KindSyncPull }

func (m *SyncPull) encode(b []byte) []byte { return b }

func (m *SyncPull) decode(r *reader) error { return nil }

// Ping is a liveness probe; the receiver answers with a Pong. The
// failure detector feeds round-trip outcomes into per-peer suspicion.
type Ping struct{}

// Kind implements Message.
func (*Ping) Kind() Kind { return KindPing }

func (m *Ping) encode(b []byte) []byte { return b }

func (m *Ping) decode(r *reader) error { return nil }

// Pong answers a Ping.
type Pong struct{}

// Kind implements Message.
func (*Pong) Kind() Kind { return KindPong }

func (m *Pong) encode(b []byte) []byte { return b }

func (m *Pong) decode(r *reader) error { return nil }

// AVSettle resolves an escrowed AV transfer identified by Xfer. With
// Cancel false the requester acknowledges it received (and credited)
// the grant, so the granter destroys its escrow ledger entry; with
// Cancel true the requester never saw the grant, so the granter
// refunds the escrow back into its own available volume.
type AVSettle struct {
	Xfer   uint64
	Cancel bool
}

// Kind implements Message.
func (*AVSettle) Kind() Kind { return KindAVSettle }

func (m *AVSettle) encode(b []byte) []byte {
	b = appendUvarint(b, m.Xfer)
	return appendBool(b, m.Cancel)
}

func (m *AVSettle) decode(r *reader) (err error) {
	if m.Xfer, err = r.uvarint(); err != nil {
		return err
	}
	m.Cancel, err = r.boolean()
	return err
}

// AVSettleAck confirms an AVSettle. Amount is the escrowed volume the
// granter resolved (0 when the transfer was unknown — e.g. already
// settled by an earlier duplicate).
type AVSettleAck struct {
	Xfer   uint64
	Amount int64
}

// Kind implements Message.
func (*AVSettleAck) Kind() Kind { return KindAVSettleAck }

func (m *AVSettleAck) encode(b []byte) []byte {
	b = appendUvarint(b, m.Xfer)
	return appendVarint(b, m.Amount)
}

func (m *AVSettleAck) decode(r *reader) (err error) {
	if m.Xfer, err = r.uvarint(); err != nil {
		return err
	}
	m.Amount, err = r.varint()
	return err
}

// RouteUpdate forwards an update to a site hosting the key's partition
// (normally the owner). MapVersion is the sender's partition-map
// version, so the receiver can detect that the sender routed by a
// different map and attach its own to the reply.
type RouteUpdate struct {
	MapVersion uint64
	Key        string
	Delta      int64
}

// Kind implements Message.
func (*RouteUpdate) Kind() Kind { return KindRouteUpdate }

func (m *RouteUpdate) encode(b []byte) []byte {
	b = appendUvarint(b, m.MapVersion)
	b = appendString(b, m.Key)
	return appendVarint(b, m.Delta)
}

func (m *RouteUpdate) decode(r *reader) (err error) {
	if m.MapVersion, err = r.uvarint(); err != nil {
		return err
	}
	if m.Key, err = r.str(); err != nil {
		return err
	}
	m.Delta, err = r.varint()
	return err
}

// RouteReply statuses.
const (
	RouteOK         uint8 = iota // update applied at the serving replica
	RouteNotReplica              // receiver does not host the key's partition
	RouteErr                     // receiver hosts it but the update failed
)

// RouteReply error classes: a routed update's failure collapsed to the
// sender-side sentinel it must map back onto, so the origin classifies
// forwarded outcomes exactly as local ones.
const (
	RouteErrNone           uint8 = iota
	RouteErrInsufficientAV       // core.ErrInsufficientAV
	RouteErrAborted              // twopc.ErrAborted
	RouteErrUnknown              // twopc.ErrCompletionUnknown
	RouteErrOther
)

// RouteReply reports a RouteUpdate's outcome. On RouteOK, Path, Rounds
// and Transferred mirror the serving replica's core.Result. On
// RouteErr, ErrClass and Reason carry the failure. Whenever the
// receiver's partition map differs from the sender's, MapVersion is
// nonzero and MapVersion/Parts/RF/MapSites carry the receiver's map so
// a stale sender can rebuild it and re-route (RouteNotReplica always
// attaches it: the redirect of PROTOCOL.md's stale-map rule).
//
// On RouteOK, AppliedSite/AppliedLSN carry the serving replica's
// read-your-writes position: the site whose plane applied the commit
// and the LSN it reached there. The origin mints its RYW token from
// this pair — the token must gate the *applying* site's read plane, not
// the origin's, whose local LSN never saw the commit. AppliedLSN zero
// (encoded by omission, like IUVote.Epoch) means the serving replica
// predates token-carrying replies or had no plane position to report.
type RouteReply struct {
	Status      uint8
	ErrClass    uint8
	Reason      string
	Path        uint8
	Rounds      uint32
	Transferred int64

	// Redirect map (absent when MapVersion is 0).
	MapVersion uint64
	Parts      uint32
	RF         uint32
	MapSites   []SiteID

	// RYW token position (absent when AppliedLSN is 0).
	AppliedSite SiteID
	AppliedLSN  uint64
}

// Kind implements Message.
func (*RouteReply) Kind() Kind { return KindRouteReply }

func (m *RouteReply) encode(b []byte) []byte {
	b = append(b, m.Status, m.ErrClass)
	b = appendString(b, m.Reason)
	b = append(b, m.Path)
	b = appendUvarint(b, uint64(m.Rounds))
	b = appendVarint(b, m.Transferred)
	b = appendUvarint(b, m.MapVersion)
	if m.MapVersion != 0 {
		b = appendUvarint(b, uint64(m.Parts))
		b = appendUvarint(b, uint64(m.RF))
		b = appendUvarint(b, uint64(len(m.MapSites)))
		for _, s := range m.MapSites {
			b = appendUvarint(b, uint64(s))
		}
	}
	if m.AppliedLSN != 0 {
		b = appendUvarint(b, uint64(m.AppliedSite))
		b = appendUvarint(b, m.AppliedLSN)
	}
	return b
}

func (m *RouteReply) decode(r *reader) (err error) {
	if m.Status, err = r.byte(); err != nil {
		return err
	}
	if m.ErrClass, err = r.byte(); err != nil {
		return err
	}
	if m.Reason, err = r.str(); err != nil {
		return err
	}
	if m.Path, err = r.byte(); err != nil {
		return err
	}
	rounds, err := r.uvarint()
	if err != nil {
		return err
	}
	m.Rounds = uint32(rounds)
	if m.Transferred, err = r.varint(); err != nil {
		return err
	}
	if m.MapVersion, err = r.uvarint(); err != nil {
		return err
	}
	if m.MapVersion != 0 {
		parts, err := r.uvarint()
		if err != nil {
			return err
		}
		m.Parts = uint32(parts)
		rf, err := r.uvarint()
		if err != nil {
			return err
		}
		m.RF = uint32(rf)
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(r.remaining()) {
			return ErrTooLong
		}
		m.MapSites = make([]SiteID, n)
		for i := range m.MapSites {
			s, err := r.uvarint()
			if err != nil {
				return err
			}
			m.MapSites[i] = SiteID(s)
		}
	}
	// Optional trailing token position: present in both map branches, so
	// the extension composes with redirects.
	if r.remaining() > 0 {
		site, err := r.uvarint()
		if err != nil {
			return err
		}
		m.AppliedSite = SiteID(site)
		if m.AppliedLSN, err = r.uvarint(); err != nil {
			return err
		}
		if m.AppliedLSN == 0 {
			return ErrNonCanonical
		}
	}
	return nil
}

// newMessage returns a zero value of the concrete type for kind.
func newMessage(k Kind) (Message, error) {
	switch k {
	case KindAVRequest:
		return &AVRequest{}, nil
	case KindAVReply:
		return &AVReply{}, nil
	case KindDeltaSync:
		return &DeltaSync{}, nil
	case KindDeltaAck:
		return &DeltaAck{}, nil
	case KindIUPrepare:
		return &IUPrepare{}, nil
	case KindIUVote:
		return &IUVote{}, nil
	case KindIUDecision:
		return &IUDecision{}, nil
	case KindIUAck:
		return &IUAck{}, nil
	case KindCentralUpdate:
		return &CentralUpdate{}, nil
	case KindCentralReply:
		return &CentralReply{}, nil
	case KindRead:
		return &Read{}, nil
	case KindReadReply:
		return &ReadReply{}, nil
	case KindSyncPull:
		return &SyncPull{}, nil
	case KindPing:
		return &Ping{}, nil
	case KindPong:
		return &Pong{}, nil
	case KindAVSettle:
		return &AVSettle{}, nil
	case KindAVSettleAck:
		return &AVSettleAck{}, nil
	case KindRouteUpdate:
		return &RouteUpdate{}, nil
	case KindRouteReply:
		return &RouteReply{}, nil
	default:
		return nil, ErrBadKind
	}
}
