package wire

// Envelope is the unit the transport moves between sites: routing header
// plus one protocol message. Seq correlates requests with replies (the
// RPC layer assigns it); IsReply distinguishes the two directions of the
// same Seq.
type Envelope struct {
	From    SiteID
	To      SiteID
	Seq     uint64
	IsReply bool
	Msg     Message
}

// EncodeEnvelope serializes e into a fresh byte slice.
func EncodeEnvelope(e *Envelope) []byte {
	// Typical envelopes are small; 64 bytes covers all fixed fields plus a
	// short key without reallocation.
	b := make([]byte, 0, 64)
	b = appendUvarint(b, uint64(e.From))
	b = appendUvarint(b, uint64(e.To))
	b = appendUvarint(b, e.Seq)
	b = appendBool(b, e.IsReply)
	b = append(b, byte(e.Msg.Kind()))
	return e.Msg.encode(b)
}

// DecodeEnvelope parses an envelope produced by EncodeEnvelope. The
// payload must consume the buffer exactly; trailing bytes are an error.
func DecodeEnvelope(b []byte) (*Envelope, error) {
	r := &reader{b: b}
	e := &Envelope{}
	from, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	e.From = SiteID(from)
	to, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	e.To = SiteID(to)
	if e.Seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	if e.IsReply, err = r.boolean(); err != nil {
		return nil, err
	}
	if r.remaining() < 1 {
		return nil, ErrTruncated
	}
	kind := Kind(r.b[0])
	r.b = r.b[1:]
	msg, err := newMessage(kind)
	if err != nil {
		return nil, err
	}
	if err := msg.decode(r); err != nil {
		return nil, err
	}
	if err := r.mustDrain(kind); err != nil {
		return nil, err
	}
	e.Msg = msg
	return e, nil
}
