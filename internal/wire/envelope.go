package wire

import "fmt"

// Envelope is the unit the transport moves between sites: routing header
// plus one protocol message. Seq correlates requests with replies (the
// RPC layer assigns it); IsReply distinguishes the two directions of the
// same Seq. TraceID/SpanID, when nonzero, carry the distributed-tracing
// context of the exchange (SpanID is the *sender's* span, which becomes
// the parent of whatever span the receiver starts).
type Envelope struct {
	From    SiteID
	To      SiteID
	Seq     uint64
	IsReply bool
	Msg     Message

	// Trace context (codec v2). Zero TraceID means untraced, and an
	// untraced envelope is encoded in the legacy v1 format — tracing
	// disabled costs zero wire bytes and stays readable by old peers.
	TraceID uint64
	SpanID  uint64
}

// Codec versioning. v1 envelopes start directly with the From uvarint.
// v2 envelopes start with verMarker, followed by an explicit version, a
// flags byte, and any versioned extensions before the v1 header. The
// marker is unambiguous on decode because the encoder never emits a v1
// envelope beginning with that byte: the only From values whose uvarint
// starts with 0xF5 (From ≡ 117 mod 128, above 127 — never seen in real
// deployments, where site IDs are small dense integers) are themselves
// encoded as v2.
const (
	verMarker    = 0xF5
	codecVersion = 2

	flagTrace = 0x01 // envelope carries traceID + spanID
)

// needsV2 reports whether e cannot be expressed in the legacy format:
// it carries trace context, or its From uvarint would collide with the
// version marker.
func needsV2(e *Envelope) bool {
	return e.TraceID != 0 || (e.From > 0x7F && e.From&0x7F == verMarker&0x7F)
}

// EncodeEnvelope serializes e into a fresh byte slice. Envelopes without
// trace context use the v1 format byte-for-byte.
func EncodeEnvelope(e *Envelope) []byte {
	// Typical envelopes are small; 64 bytes covers all fixed fields plus a
	// short key without reallocation.
	return AppendEnvelope(make([]byte, 0, 64), e)
}

// AppendEnvelope serializes e onto b and returns the extended slice.
// Transports with pooled or per-connection write buffers use it to
// encode in place without a fresh allocation per message.
func AppendEnvelope(b []byte, e *Envelope) []byte {
	if needsV2(e) {
		b = append(b, verMarker)
		b = appendUvarint(b, codecVersion)
		var flags byte
		if e.TraceID != 0 {
			flags |= flagTrace
		}
		b = append(b, flags)
		if e.TraceID != 0 {
			b = appendUvarint(b, e.TraceID)
			b = appendUvarint(b, e.SpanID)
		}
	}
	b = appendUvarint(b, uint64(e.From))
	b = appendUvarint(b, uint64(e.To))
	b = appendUvarint(b, e.Seq)
	b = appendBool(b, e.IsReply)
	b = append(b, byte(e.Msg.Kind()))
	return e.Msg.encode(b)
}

// DecodeEnvelope parses an envelope produced by EncodeEnvelope — either
// the legacy v1 format or the v2 format with extensions. The payload
// must consume the buffer exactly; trailing bytes are an error.
func DecodeEnvelope(b []byte) (*Envelope, error) {
	r := &reader{b: b}
	e := &Envelope{}
	if len(b) > 0 && b[0] == verMarker {
		r.b = r.b[1:]
		ver, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if ver != codecVersion {
			return nil, fmt.Errorf("%w: codec version %d", ErrBadVersion, ver)
		}
		if r.remaining() < 1 {
			return nil, ErrTruncated
		}
		flags := r.b[0]
		r.b = r.b[1:]
		if flags&^flagTrace != 0 {
			return nil, fmt.Errorf("%w: unknown envelope flags %#x", ErrBadVersion, flags)
		}
		if flags&flagTrace != 0 {
			if e.TraceID, err = r.uvarint(); err != nil {
				return nil, err
			}
			if e.SpanID, err = r.uvarint(); err != nil {
				return nil, err
			}
		}
	}
	from, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	e.From = SiteID(from)
	to, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	e.To = SiteID(to)
	if e.Seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	if e.IsReply, err = r.boolean(); err != nil {
		return nil, err
	}
	if r.remaining() < 1 {
		return nil, ErrTruncated
	}
	kind := Kind(r.b[0])
	r.b = r.b[1:]
	msg, err := newMessage(kind)
	if err != nil {
		return nil, err
	}
	if err := msg.decode(r); err != nil {
		return nil, err
	}
	if err := r.mustDrain(kind); err != nil {
		return nil, err
	}
	e.Msg = msg
	return e, nil
}
