// Package wire defines the avdb network protocol: every message exchanged
// between sites (AV transfer requests and grants, Delay-Update delta
// synchronization, Immediate-Update two-phase-commit traffic, the
// centralized-baseline protocol and client reads) and a compact
// hand-rolled binary codec for them.
//
// The encoding is deliberately simple and explicit: unsigned varints for
// integers (zig-zag for signed), length-prefixed byte strings, and a
// one-byte kind tag selecting the message type inside an envelope. There
// is no reflection and no allocation beyond the output buffer, so the
// codec is cheap enough that message cost in experiments is dominated by
// the transport, as it would be in a real deployment.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec errors.
var (
	ErrTruncated = errors.New("wire: truncated message")
	ErrTooLong   = errors.New("wire: length prefix exceeds remaining data")
	ErrBadKind   = errors.New("wire: unknown message kind")
	// ErrBadVersion reports an envelope from a newer (or corrupted) codec
	// revision than this build understands.
	ErrBadVersion = errors.New("wire: unsupported envelope version")
	// ErrNonCanonical reports an optional field encoded with its default
	// value; the canonical encoding omits it entirely.
	ErrNonCanonical = errors.New("wire: non-canonical optional field")
)

// appendUvarint appends v to b in unsigned varint encoding.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// appendVarint appends v to b in zig-zag varint encoding.
func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBool appends a single 0/1 byte.
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// reader consumes the primitives appended by the append* helpers.
type reader struct {
	b []byte
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)) || n > math.MaxInt32 {
		return "", ErrTooLong
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

func (r *reader) byte() (uint8, error) {
	if len(r.b) < 1 {
		return 0, ErrTruncated
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *reader) boolean() (bool, error) {
	if len(r.b) < 1 {
		return false, ErrTruncated
	}
	v := r.b[0] != 0
	r.b = r.b[1:]
	return v, nil
}

func (r *reader) remaining() int { return len(r.b) }

// mustDrain returns an error if decoded message left trailing bytes,
// which indicates a framing bug or version skew.
func (r *reader) mustDrain(kind Kind) error {
	if len(r.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after %v payload", len(r.b), kind)
	}
	return nil
}
