package wire

import (
	"bytes"
	"testing"
)

// fuzzSeeds returns one valid envelope per message kind (plus a traced
// v2 variant), so the fuzzer starts from every branch of the decoder.
func fuzzSeeds() []*Envelope {
	msgs := []Message{
		&AVRequest{Key: "product-0001", Amount: 25},
		&AVReply{Key: "product-0001", Granted: 10, View: []AVInfo{{Site: 2, Key: "product-0001", Avail: 40}}},
		&DeltaSync{Origin: 1, Deltas: []Delta{{Seq: 1, Key: "a", Amount: -3}, {Seq: 2, Key: "b", Amount: 4}}},
		&DeltaSync{Origin: 1, FirstSeq: 7, Deltas: []Delta{{Seq: 9, Key: "a", Amount: -3}}},
		&DeltaAck{Origin: 3, UpTo: 99},
		&IUPrepare{TxnID: 12, Coord: 0, Key: "product-0002", Delta: -5},
		&IUVote{TxnID: 12, OK: false, Reason: "lock timeout"},
		&IUVote{TxnID: 12, OK: true, Epoch: 3},
		&IUDecision{TxnID: 12, Commit: true},
		&IUAck{TxnID: 12, OK: true},
		&IUAck{TxnID: 12, OK: true, Epoch: 9},
		&CentralUpdate{Key: "product-0003", Delta: 7},
		&CentralReply{OK: false, NewValue: 0, Reason: "rejected"},
		&Read{Key: "product-0004"},
		&ReadReply{OK: true, Value: 1234},
		&SyncPull{},
		&AVRequest{Key: "product-0001", Amount: 25, Xfer: 0x700000001},
		&Ping{},
		&Pong{},
		&AVSettle{Xfer: 0x700000001, Cancel: true},
		&AVSettleAck{Xfer: 0x700000001, Amount: 10},
		&DeltaSync{Origin: 1, FirstSeq: 7, Deltas: []Delta{{Seq: 9, Key: "a", Amount: -3}}, WindowTop: 11},
		&RouteUpdate{MapVersion: 1, Key: "product-0005", Delta: -4},
		&RouteReply{Status: RouteOK, Path: 0, Rounds: 1, Transferred: 5},
		&RouteReply{Status: RouteNotReplica, Reason: "not hosted",
			MapVersion: 2, Parts: 16, RF: 2, MapSites: []SiteID{0, 1, 2}},
		// Extended frames: the trailing RYW token fields, with and
		// without a piggybacked map refresh.
		&RouteReply{Status: RouteOK, Rounds: 2, Transferred: 9, AppliedSite: 4, AppliedLSN: 77},
		&RouteReply{Status: RouteOK, Rounds: 1, Transferred: 3,
			MapVersion: 3, Parts: 16, RF: 2, MapSites: []SiteID{1, 2, 5},
			AppliedSite: 5, AppliedLSN: 0x1_0000_0001},
	}
	envs := make([]*Envelope, 0, len(msgs)+1)
	for i, m := range msgs {
		envs = append(envs, &Envelope{From: SiteID(i % 4), To: SiteID((i + 1) % 4), Seq: uint64(i), Msg: m})
	}
	// A traced envelope exercises the v2 framing.
	envs = append(envs, &Envelope{
		From: 1, To: 2, Seq: 5, IsReply: true,
		TraceID: 0xdeadbeef, SpanID: 0x42,
		Msg: &ReadReply{OK: true, Value: -1},
	})
	return envs
}

// FuzzDecodeEnvelope asserts the decoder never panics on arbitrary
// bytes, rejects trailing garbage, and that whatever it accepts
// round-trips stably: decode -> encode -> decode -> encode must
// reproduce the same bytes (the encoding is canonical).
func FuzzDecodeEnvelope(f *testing.F) {
	for _, e := range fuzzSeeds() {
		f.Add(EncodeEnvelope(e))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		// Any accepted input followed by junk must be rejected: the
		// decoder owns the whole frame.
		if _, err := DecodeEnvelope(append(append([]byte{}, data...), 0x00)); err == nil {
			t.Fatalf("accepted input with a trailing byte")
		}
		enc1 := EncodeEnvelope(e)
		e2, err := DecodeEnvelope(enc1)
		if err != nil {
			t.Fatalf("re-decode of re-encoded envelope failed: %v", err)
		}
		enc2 := EncodeEnvelope(e2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding not stable:\n first %x\nsecond %x", enc1, enc2)
		}
	})
}
