package wire

import (
	"reflect"
	"testing"
	"testing/quick"
)

// roundTrip encodes msg inside an envelope and decodes it back.
func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	in := &Envelope{From: 3, To: 9, Seq: 77, IsReply: true, Msg: msg}
	b := EncodeEnvelope(in)
	out, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	if out.From != in.From || out.To != in.To || out.Seq != in.Seq || out.IsReply != in.IsReply {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	if out.Msg.Kind() != msg.Kind() {
		t.Fatalf("kind mismatch: %v vs %v", out.Msg.Kind(), msg.Kind())
	}
	return out.Msg
}

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []Message{
		&AVRequest{Key: "p17", Amount: -42},
		&AVReply{Key: "p17", Granted: 500, View: []AVInfo{{Site: 0, Key: "p17", Avail: 1000}, {Site: 2, Key: "p3", Avail: -7}}},
		&AVReply{Key: "", Granted: 0, View: nil},
		&DeltaSync{Origin: 1, Deltas: []Delta{{Seq: 1, Key: "a", Amount: -3}, {Seq: 2, Key: "b", Amount: 9}}},
		&DeltaSync{Origin: 0, Deltas: nil},
		&DeltaAck{Origin: 2, UpTo: 12345},
		&IUPrepare{TxnID: 99, Coord: 1, Key: "nonreg-4", Delta: -10},
		&IUVote{TxnID: 99, OK: false, Reason: "lock timeout"},
		&IUVote{TxnID: 99, OK: true, Epoch: 41},
		&IUDecision{TxnID: 99, Commit: true},
		&IUAck{TxnID: 99, OK: true},
		&IUAck{TxnID: 99, OK: true, Epoch: 0xABCDEF},
		&CentralUpdate{Key: "x", Delta: 123456789},
		&CentralReply{OK: true, NewValue: -1, Reason: ""},
		&CentralReply{OK: false, NewValue: 0, Reason: "would go negative"},
		&Read{Key: "k"},
		&ReadReply{OK: true, Value: 314},
		&AVRequest{Key: "p17", Amount: -42, Xfer: 1},
		&AVRequest{Key: "p17", Amount: 7, Xfer: 0xABCDEF0123},
		&Ping{},
		&Pong{},
		&AVSettle{Xfer: 42, Cancel: false},
		&AVSettle{Xfer: 0xABCDEF0123, Cancel: true},
		&AVSettleAck{Xfer: 42, Amount: 0},
		&AVSettleAck{Xfer: 1, Amount: 99},
		&DeltaSync{Origin: 3, FirstSeq: 10, Deltas: []Delta{{Seq: 12, Key: "a", Amount: -3}}, WindowTop: 15},
		&DeltaSync{Origin: 3, FirstSeq: 10, Deltas: nil, WindowTop: 11},
		&RouteUpdate{MapVersion: 1, Key: "p42", Delta: -9},
		&RouteUpdate{MapVersion: 7, Key: "", Delta: 0},
		&RouteReply{Status: RouteOK, Path: 1, Rounds: 2, Transferred: 30},
		&RouteReply{Status: RouteErr, ErrClass: RouteErrInsufficientAV, Reason: "need 9 held 4"},
		&RouteReply{Status: RouteNotReplica, Reason: "partition 3 not hosted",
			MapVersion: 2, Parts: 16, RF: 2, MapSites: []SiteID{0, 1, 2, 3, 4, 5}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		// Normalize nil vs empty slices for comparison.
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Errorf("%T round trip: got %#v want %#v", m, got, m)
		}
	}
}

// TestAVRequestXferOptionalField pins the compatibility contract of the
// trailing Xfer field: a zero Xfer encodes byte-identically to the
// legacy format (so healthy-path traffic is unchanged), and an
// explicitly-encoded zero is rejected as non-canonical.
func TestAVRequestXferOptionalField(t *testing.T) {
	legacy := EncodeEnvelope(&Envelope{From: 1, To: 2, Seq: 3,
		Msg: &AVRequest{Key: "p17", Amount: -42}})
	withZero := EncodeEnvelope(&Envelope{From: 1, To: 2, Seq: 3,
		Msg: &AVRequest{Key: "p17", Amount: -42, Xfer: 0}})
	if !reflect.DeepEqual(legacy, withZero) {
		t.Fatalf("zero Xfer changed the encoding:\nlegacy %x\n  zero %x", legacy, withZero)
	}
	// Hand-append an explicit zero varint for Xfer: must be rejected.
	if _, err := DecodeEnvelope(append(append([]byte{}, legacy...), 0x00)); err == nil {
		t.Fatal("explicit zero Xfer accepted")
	}
}

// TestDeltaSyncWindowTopOptionalField pins the trailing-field contract
// for WindowTop: full-replication senders (WindowTop zero) encode
// byte-identically to the legacy format, and an explicitly-encoded zero
// is rejected as non-canonical.
func TestDeltaSyncWindowTopOptionalField(t *testing.T) {
	base := &DeltaSync{Origin: 1, FirstSeq: 4, Deltas: []Delta{{Seq: 5, Key: "k", Amount: 2}}}
	legacy := EncodeEnvelope(&Envelope{From: 1, To: 2, Seq: 3, Msg: base})
	withZero := EncodeEnvelope(&Envelope{From: 1, To: 2, Seq: 3,
		Msg: &DeltaSync{Origin: 1, FirstSeq: 4, Deltas: base.Deltas, WindowTop: 0}})
	if !reflect.DeepEqual(legacy, withZero) {
		t.Fatalf("zero WindowTop changed the encoding:\nlegacy %x\n  zero %x", legacy, withZero)
	}
	if _, err := DecodeEnvelope(append(append([]byte{}, legacy...), 0x00)); err == nil {
		t.Fatal("explicit zero WindowTop accepted")
	}
}

// TestEpochOptionalFields pins the same trailing-field contract for the
// epoch numbers on IUVote and IUAck: epochs-off peers encode
// byte-identically to the legacy format, and an explicit zero epoch is
// rejected as non-canonical.
func TestEpochOptionalFields(t *testing.T) {
	for _, msgs := range [][2]Message{
		{&IUVote{TxnID: 7, OK: true}, &IUVote{TxnID: 7, OK: true, Epoch: 0}},
		{&IUAck{TxnID: 7, OK: true}, &IUAck{TxnID: 7, OK: true, Epoch: 0}},
	} {
		legacy := EncodeEnvelope(&Envelope{From: 1, To: 2, Seq: 3, Msg: msgs[0]})
		withZero := EncodeEnvelope(&Envelope{From: 1, To: 2, Seq: 3, Msg: msgs[1]})
		if !reflect.DeepEqual(legacy, withZero) {
			t.Fatalf("%T: zero epoch changed the encoding:\nlegacy %x\n  zero %x", msgs[0], legacy, withZero)
		}
		if _, err := DecodeEnvelope(append(append([]byte{}, legacy...), 0x00)); err == nil {
			t.Fatalf("%T: explicit zero epoch accepted", msgs[0])
		}
	}
}

// normalize maps nil slices to empty so DeepEqual treats them alike.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *AVReply:
		if v.View == nil {
			c := *v
			c.View = []AVInfo{}
			return &c
		}
	case *DeltaSync:
		if v.Deltas == nil {
			c := *v
			c.Deltas = []Delta{}
			return &c
		}
	}
	return m
}

// encodeLegacyV1 hand-builds the version-less v1 envelope format old
// peers emitted, independent of the current encoder.
func encodeLegacyV1(e *Envelope) []byte {
	b := make([]byte, 0, 64)
	b = appendUvarint(b, uint64(e.From))
	b = appendUvarint(b, uint64(e.To))
	b = appendUvarint(b, e.Seq)
	b = appendBool(b, e.IsReply)
	b = append(b, byte(e.Msg.Kind()))
	return e.Msg.encode(b)
}

func TestTraceContextRoundTrip(t *testing.T) {
	in := &Envelope{From: 1, To: 2, Seq: 9, TraceID: 0xdeadbeef, SpanID: 0xcafe,
		Msg: &AVRequest{Key: "p1", Amount: -5}}
	raw := EncodeEnvelope(in)
	if raw[0] != verMarker {
		t.Fatalf("traced envelope not v2: first byte %#x", raw[0])
	}
	out, err := DecodeEnvelope(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.TraceID != in.TraceID || out.SpanID != in.SpanID {
		t.Fatalf("trace context lost: %+v", out)
	}
	if out.From != 1 || out.To != 2 || out.Seq != 9 {
		t.Fatalf("header lost: %+v", out)
	}
	if out.Msg.(*AVRequest).Key != "p1" {
		t.Fatalf("payload lost: %+v", out.Msg)
	}
}

func TestUntracedEnvelopeStaysV1(t *testing.T) {
	in := &Envelope{From: 3, To: 9, Seq: 77, Msg: &Read{Key: "k"}}
	raw := EncodeEnvelope(in)
	legacy := encodeLegacyV1(in)
	if string(raw) != string(legacy) {
		t.Fatalf("untraced envelope diverged from v1 bytes:\n got %x\nwant %x", raw, legacy)
	}
	out, err := DecodeEnvelope(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.TraceID != 0 || out.SpanID != 0 {
		t.Fatalf("phantom trace context: %+v", out)
	}
}

func TestLegacyV1EnvelopesStillDecode(t *testing.T) {
	msgs := []Message{
		&AVRequest{Key: "p17", Amount: -42},
		&DeltaSync{Origin: 1, Deltas: []Delta{{Seq: 1, Key: "a", Amount: -3}}},
		&IUPrepare{TxnID: 99, Coord: 1, Key: "nonreg-4", Delta: -10},
		&SyncPull{},
	}
	for _, m := range msgs {
		in := &Envelope{From: 2, To: 0, Seq: 1234, Msg: m}
		out, err := DecodeEnvelope(encodeLegacyV1(in))
		if err != nil {
			t.Fatalf("legacy %T: %v", m, err)
		}
		if out.From != in.From || out.Seq != in.Seq || out.Msg.Kind() != m.Kind() {
			t.Fatalf("legacy %T mangled: %+v", m, out)
		}
	}
}

func TestMarkerCollidingFromRoundTrips(t *testing.T) {
	// From values whose v1 uvarint would begin with the version marker
	// must be encoded as v2 and still round-trip.
	for _, from := range []SiteID{245, 245 + 128, 245 + 128*1000} {
		in := &Envelope{From: from, To: 1, Seq: 5, Msg: &Read{Key: "k"}}
		raw := EncodeEnvelope(in)
		if raw[0] != verMarker {
			t.Fatalf("from=%d: expected v2 encoding, first byte %#x", from, raw[0])
		}
		out, err := DecodeEnvelope(raw)
		if err != nil {
			t.Fatalf("from=%d: %v", from, err)
		}
		if out.From != from {
			t.Fatalf("from=%d round-tripped to %d", from, out.From)
		}
	}
}

func TestDecodeRejectsFutureVersion(t *testing.T) {
	b := []byte{verMarker}
	b = appendUvarint(b, 99) // claimed codec version 99
	b = append(b, 0)
	if _, err := DecodeEnvelope(b); err == nil {
		t.Fatal("future version accepted")
	}
	// Unknown flag bits must also fail loudly rather than misparse.
	b = []byte{verMarker}
	b = appendUvarint(b, codecVersion)
	b = append(b, 0x80)
	if _, err := DecodeEnvelope(b); err == nil {
		t.Fatal("unknown flags accepted")
	}
}

func TestQuickTraceContextRoundTrip(t *testing.T) {
	f := func(traceID, spanID uint64, from uint32, key string) bool {
		in := &Envelope{From: SiteID(from), To: 7, Seq: 3, TraceID: traceID, SpanID: spanID,
			Msg: &AVRequest{Key: key, Amount: 1}}
		out, err := DecodeEnvelope(EncodeEnvelope(in))
		if err != nil {
			return false
		}
		return out.TraceID == traceID && out.From == in.From &&
			(traceID == 0 || out.SpanID == spanID)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	if KindAVRequest.String() != "av.request" {
		t.Fatalf("got %q", KindAVRequest.String())
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatalf("got %q", Kind(200).String())
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x01},                       // truncated header
		{0, 0, 0, 0, 0xFF},           // unknown kind 255
		{0, 0, 0, 2},                 // bad bool then missing kind
		{0, 0, 0, 0, byte(KindRead)}, // read with no key
	}
	for i, b := range cases {
		if _, err := DecodeEnvelope(b); err == nil {
			t.Errorf("case %d: garbage decoded without error", i)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	b := EncodeEnvelope(&Envelope{Msg: &Read{Key: "k"}})
	b = append(b, 0xAB)
	if _, err := DecodeEnvelope(b); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeRejectsTruncations(t *testing.T) {
	msg := &AVReply{
		Key: "product-123", Granted: 999, View: []AVInfo{{Site: 5, Key: "product-123", Avail: 77}},
	}
	for _, traceID := range []uint64{0, 0xfeedface} { // v1 and v2 formats
		full := EncodeEnvelope(&Envelope{From: 1, To: 2, Seq: 1 << 40, TraceID: traceID, SpanID: 7, Msg: msg})
		for n := 0; n < len(full); n++ {
			if _, err := DecodeEnvelope(full[:n]); err == nil {
				t.Fatalf("trace=%#x: truncation to %d bytes accepted", traceID, n)
			}
		}
	}
}

func TestDecodeRejectsHugeCountPrefix(t *testing.T) {
	// Hand-build a DeltaSync claiming 2^40 entries with no data behind it.
	b := []byte{0, 0, 0, 0, byte(KindDeltaSync)}
	b = appendUvarint(b, 0)     // origin
	b = appendUvarint(b, 0)     // first-seq
	b = appendUvarint(b, 1<<40) // claimed count
	if _, err := DecodeEnvelope(b); err == nil {
		t.Fatal("absurd count prefix accepted")
	}
}

func TestQuickAVRequestRoundTrip(t *testing.T) {
	f := func(key string, amount int64, from, to uint32, seq uint64, isReply bool) bool {
		in := &Envelope{From: SiteID(from), To: SiteID(to), Seq: seq, IsReply: isReply,
			Msg: &AVRequest{Key: key, Amount: amount}}
		out, err := DecodeEnvelope(EncodeEnvelope(in))
		if err != nil {
			return false
		}
		m := out.Msg.(*AVRequest)
		return out.From == in.From && out.To == in.To && out.Seq == seq &&
			out.IsReply == isReply && m.Key == key && m.Amount == amount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeltaSyncRoundTrip(t *testing.T) {
	f := func(origin uint16, seqs []uint16, keys []string, amounts []int64) bool {
		n := len(seqs)
		if len(keys) < n {
			n = len(keys)
		}
		if len(amounts) < n {
			n = len(amounts)
		}
		in := &DeltaSync{Origin: SiteID(origin)}
		for i := 0; i < n; i++ {
			in.Deltas = append(in.Deltas, Delta{Seq: uint64(seqs[i]), Key: keys[i], Amount: amounts[i]})
		}
		out, err := DecodeEnvelope(EncodeEnvelope(&Envelope{Msg: in}))
		if err != nil {
			return false
		}
		m := out.Msg.(*DeltaSync)
		if m.Origin != in.Origin || len(m.Deltas) != len(in.Deltas) {
			return false
		}
		for i := range in.Deltas {
			if m.Deltas[i] != in.Deltas[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = DecodeEnvelope(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeAVRequest(b *testing.B) {
	e := &Envelope{From: 1, To: 0, Seq: 42, Msg: &AVRequest{Key: "product-0042", Amount: 100}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeEnvelope(e)
	}
}

func BenchmarkDecodeAVRequest(b *testing.B) {
	raw := EncodeEnvelope(&Envelope{From: 1, To: 0, Seq: 42, Msg: &AVRequest{Key: "product-0042", Amount: 100}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEnvelope(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDeltaSync64(b *testing.B) {
	m := &DeltaSync{Origin: 1}
	for i := 0; i < 64; i++ {
		m.Deltas = append(m.Deltas, Delta{Seq: uint64(i + 1), Key: "product-0001", Amount: int64(-i)})
	}
	e := &Envelope{From: 1, To: 2, Msg: m}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeEnvelope(e)
	}
}
