package wire

import (
	"reflect"
	"testing"
	"testing/quick"
)

// roundTrip encodes msg inside an envelope and decodes it back.
func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	in := &Envelope{From: 3, To: 9, Seq: 77, IsReply: true, Msg: msg}
	b := EncodeEnvelope(in)
	out, err := DecodeEnvelope(b)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	if out.From != in.From || out.To != in.To || out.Seq != in.Seq || out.IsReply != in.IsReply {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	if out.Msg.Kind() != msg.Kind() {
		t.Fatalf("kind mismatch: %v vs %v", out.Msg.Kind(), msg.Kind())
	}
	return out.Msg
}

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []Message{
		&AVRequest{Key: "p17", Amount: -42},
		&AVReply{Key: "p17", Granted: 500, View: []AVInfo{{Site: 0, Key: "p17", Avail: 1000}, {Site: 2, Key: "p3", Avail: -7}}},
		&AVReply{Key: "", Granted: 0, View: nil},
		&DeltaSync{Origin: 1, Deltas: []Delta{{Seq: 1, Key: "a", Amount: -3}, {Seq: 2, Key: "b", Amount: 9}}},
		&DeltaSync{Origin: 0, Deltas: nil},
		&DeltaAck{Origin: 2, UpTo: 12345},
		&IUPrepare{TxnID: 99, Coord: 1, Key: "nonreg-4", Delta: -10},
		&IUVote{TxnID: 99, OK: false, Reason: "lock timeout"},
		&IUDecision{TxnID: 99, Commit: true},
		&IUAck{TxnID: 99, OK: true},
		&CentralUpdate{Key: "x", Delta: 123456789},
		&CentralReply{OK: true, NewValue: -1, Reason: ""},
		&CentralReply{OK: false, NewValue: 0, Reason: "would go negative"},
		&Read{Key: "k"},
		&ReadReply{OK: true, Value: 314},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		// Normalize nil vs empty slices for comparison.
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Errorf("%T round trip: got %#v want %#v", m, got, m)
		}
	}
}

// normalize maps nil slices to empty so DeepEqual treats them alike.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *AVReply:
		if v.View == nil {
			c := *v
			c.View = []AVInfo{}
			return &c
		}
	case *DeltaSync:
		if v.Deltas == nil {
			c := *v
			c.Deltas = []Delta{}
			return &c
		}
	}
	return m
}

func TestKindStrings(t *testing.T) {
	if KindAVRequest.String() != "av.request" {
		t.Fatalf("got %q", KindAVRequest.String())
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatalf("got %q", Kind(200).String())
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x01},                       // truncated header
		{0, 0, 0, 0, 0xFF},           // unknown kind 255
		{0, 0, 0, 2},                 // bad bool then missing kind
		{0, 0, 0, 0, byte(KindRead)}, // read with no key
	}
	for i, b := range cases {
		if _, err := DecodeEnvelope(b); err == nil {
			t.Errorf("case %d: garbage decoded without error", i)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	b := EncodeEnvelope(&Envelope{Msg: &Read{Key: "k"}})
	b = append(b, 0xAB)
	if _, err := DecodeEnvelope(b); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeRejectsTruncations(t *testing.T) {
	full := EncodeEnvelope(&Envelope{From: 1, To: 2, Seq: 1 << 40, Msg: &AVReply{
		Key: "product-123", Granted: 999, View: []AVInfo{{Site: 5, Key: "product-123", Avail: 77}},
	}})
	for n := 0; n < len(full); n++ {
		if _, err := DecodeEnvelope(full[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func TestDecodeRejectsHugeCountPrefix(t *testing.T) {
	// Hand-build a DeltaSync claiming 2^40 entries with no data behind it.
	b := []byte{0, 0, 0, 0, byte(KindDeltaSync)}
	b = appendUvarint(b, 0)     // origin
	b = appendUvarint(b, 1<<40) // claimed count
	if _, err := DecodeEnvelope(b); err == nil {
		t.Fatal("absurd count prefix accepted")
	}
}

func TestQuickAVRequestRoundTrip(t *testing.T) {
	f := func(key string, amount int64, from, to uint32, seq uint64, isReply bool) bool {
		in := &Envelope{From: SiteID(from), To: SiteID(to), Seq: seq, IsReply: isReply,
			Msg: &AVRequest{Key: key, Amount: amount}}
		out, err := DecodeEnvelope(EncodeEnvelope(in))
		if err != nil {
			return false
		}
		m := out.Msg.(*AVRequest)
		return out.From == in.From && out.To == in.To && out.Seq == seq &&
			out.IsReply == isReply && m.Key == key && m.Amount == amount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeltaSyncRoundTrip(t *testing.T) {
	f := func(origin uint16, seqs []uint16, keys []string, amounts []int64) bool {
		n := len(seqs)
		if len(keys) < n {
			n = len(keys)
		}
		if len(amounts) < n {
			n = len(amounts)
		}
		in := &DeltaSync{Origin: SiteID(origin)}
		for i := 0; i < n; i++ {
			in.Deltas = append(in.Deltas, Delta{Seq: uint64(seqs[i]), Key: keys[i], Amount: amounts[i]})
		}
		out, err := DecodeEnvelope(EncodeEnvelope(&Envelope{Msg: in}))
		if err != nil {
			return false
		}
		m := out.Msg.(*DeltaSync)
		if m.Origin != in.Origin || len(m.Deltas) != len(in.Deltas) {
			return false
		}
		for i := range in.Deltas {
			if m.Deltas[i] != in.Deltas[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = DecodeEnvelope(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeAVRequest(b *testing.B) {
	e := &Envelope{From: 1, To: 0, Seq: 42, Msg: &AVRequest{Key: "product-0042", Amount: 100}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeEnvelope(e)
	}
}

func BenchmarkDecodeAVRequest(b *testing.B) {
	raw := EncodeEnvelope(&Envelope{From: 1, To: 0, Seq: 42, Msg: &AVRequest{Key: "product-0042", Amount: 100}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEnvelope(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDeltaSync64(b *testing.B) {
	m := &DeltaSync{Origin: 1}
	for i := 0; i < 64; i++ {
		m.Deltas = append(m.Deltas, Delta{Seq: uint64(i + 1), Key: "product-0001", Amount: int64(-i)})
	}
	e := &Envelope{From: 1, To: 2, Msg: m}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeEnvelope(e)
	}
}
