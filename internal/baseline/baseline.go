// Package baseline implements the paper's comparator: the "conventional
// centralized way". Every update, wherever it originates, is shipped to
// the central site (the integrated system's master), applied there under
// a local transaction, and acknowledged — one request/reply
// correspondence per non-central update. Optionally the centre pushes
// each committed update to replica sites synchronously (Broadcast),
// which models a centralized system that also maintains remote copies.
//
// It runs on the same transport and is counted by the same registry as
// the proposed system, so Fig. 6's two curves are measured identically.
package baseline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"avdb/internal/lockmgr"
	"avdb/internal/metrics"
	"avdb/internal/storage"
	"avdb/internal/transport"
	"avdb/internal/transport/memnet"
	"avdb/internal/txn"
	"avdb/internal/wire"
)

// Baseline errors.
var (
	// ErrRejected reports the central site refused the update (it would
	// drive the stock negative).
	ErrRejected = errors.New("baseline: update rejected by central site")
)

// Config parameterizes a System.
type Config struct {
	// Sites is the number of sites; site 0 is the centre.
	Sites int
	// Items and InitialAmount seed the catalog (same as cluster.Config).
	Items         int
	InitialAmount int64
	// Broadcast, when set, pushes every committed update to all replica
	// sites synchronously (adds Sites-1 correspondences per update).
	Broadcast bool
	// Registry counts messages; nil creates a fresh one.
	Registry *metrics.Registry
	// CallTimeout bounds RPCs.
	CallTimeout time.Duration
	// Latency optionally injects per-message network delay (for the
	// latency experiment; counting experiments leave it nil).
	Latency func(from, to wire.SiteID) time.Duration
}

// System is a running centralized system.
type System struct {
	cfg      Config
	Net      *memnet.Net
	Registry *metrics.Registry
	Keys     []string

	nodes   []transport.Node
	engines []*storage.Engine // engines[0] is authoritative
	tm      *txn.Manager      // central transaction manager
}

// New builds and seeds a centralized system.
func New(cfg Config) (*System, error) {
	if cfg.Sites < 1 || cfg.Items < 1 {
		return nil, fmt.Errorf("baseline: need sites >= 1 and items >= 1")
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	s := &System{
		cfg:      cfg,
		Registry: cfg.Registry,
		Net:      memnet.New(memnet.Options{Registry: cfg.Registry, CallTimeout: cfg.CallTimeout, Latency: cfg.Latency}),
	}
	for i := 0; i < cfg.Items; i++ {
		s.Keys = append(s.Keys, fmt.Sprintf("product-%04d", i))
	}
	for id := 0; id < cfg.Sites; id++ {
		eng, err := storage.Open(storage.Options{})
		if err != nil {
			s.Close()
			return nil, err
		}
		for i, key := range s.Keys {
			eng.Put(storage.Record{Key: key, Name: fmt.Sprintf("Product %d", i), Amount: cfg.InitialAmount})
		}
		s.engines = append(s.engines, eng)
	}
	s.tm = txn.NewManager(s.engines[0], lockmgr.Options{})
	for id := 0; id < cfg.Sites; id++ {
		node, err := s.Net.Open(wire.SiteID(id), s.handlerFor(id))
		if err != nil {
			s.Close()
			return nil, err
		}
		s.nodes = append(s.nodes, node)
	}
	return s, nil
}

// handlerFor builds site id's message handler. Only the centre applies
// CentralUpdates; replicas accept pushes and serve reads.
func (s *System) handlerFor(id int) transport.Handler {
	return func(_ context.Context, from wire.SiteID, msg wire.Message) wire.Message {
		switch m := msg.(type) {
		case *wire.CentralUpdate:
			if id == 0 {
				newVal, err := s.applyCentral(m.Key, m.Delta)
				if err != nil {
					return &wire.CentralReply{OK: false, Reason: err.Error()}
				}
				return &wire.CentralReply{OK: true, NewValue: newVal}
			}
			// Replica receiving a broadcast push from the centre.
			newVal, err := s.engines[id].ApplyDelta(m.Key, m.Delta)
			return &wire.CentralReply{OK: err == nil, NewValue: newVal}
		case *wire.Read:
			n, err := s.engines[id].Amount(m.Key)
			return &wire.ReadReply{OK: err == nil, Value: n}
		default:
			return nil
		}
	}
}

// applyCentral commits delta at the centre under a transaction, with the
// same non-negativity rule the proposed system enforces via AV/2PC.
func (s *System) applyCentral(key string, delta int64) (int64, error) {
	tx := s.tm.Begin()
	defer tx.Abort()
	newVal, err := tx.ApplyDelta(context.Background(), key, delta)
	if err != nil {
		return 0, err
	}
	if newVal < 0 {
		return 0, fmt.Errorf("%w: %s would become %d", ErrRejected, key, newVal)
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return newVal, nil
}

// Update performs one update originating at site from. Updates from the
// centre itself are local (no messages) — the same advantage the centre
// enjoys in the paper's conventional curve.
func (s *System) Update(ctx context.Context, from int, key string, delta int64) error {
	var newVal int64
	if from == 0 {
		v, err := s.applyCentral(key, delta)
		if err != nil {
			return err
		}
		newVal = v
	} else {
		reply, err := s.nodes[from].Call(ctx, 0, &wire.CentralUpdate{Key: key, Delta: delta})
		if err != nil {
			return err
		}
		cr, ok := reply.(*wire.CentralReply)
		if !ok {
			return fmt.Errorf("baseline: unexpected reply %T", reply)
		}
		if !cr.OK {
			return fmt.Errorf("%w: %s", ErrRejected, cr.Reason)
		}
		newVal = cr.NewValue
	}
	_ = newVal
	if s.cfg.Broadcast {
		for id := 1; id < s.cfg.Sites; id++ {
			if _, err := s.nodes[0].Call(ctx, wire.SiteID(id), &wire.CentralUpdate{Key: key, Delta: delta}); err != nil {
				return fmt.Errorf("baseline: broadcast to site %d: %w", id, err)
			}
		}
	}
	return nil
}

// Read returns the value as site from sees it: a local replica read when
// Broadcast maintains replicas, otherwise a round trip to the centre.
func (s *System) Read(ctx context.Context, from int, key string) (int64, error) {
	if from == 0 || s.cfg.Broadcast {
		return s.engines[from].Amount(key)
	}
	reply, err := s.nodes[from].Call(ctx, 0, &wire.Read{Key: key})
	if err != nil {
		return 0, err
	}
	rr, ok := reply.(*wire.ReadReply)
	if !ok || !rr.OK {
		return 0, fmt.Errorf("baseline: read of %q failed", key)
	}
	return rr.Value, nil
}

// CentralValue returns the authoritative value.
func (s *System) CentralValue(key string) (int64, error) {
	return s.engines[0].Amount(key)
}

// Close shuts the system down.
func (s *System) Close() error {
	for _, n := range s.nodes {
		n.Close()
	}
	var firstErr error
	for _, e := range s.engines {
		if err := e.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
