package baseline

import (
	"context"
	"errors"
	"testing"
	"time"

	"avdb/internal/transport"
)

func bg() context.Context { return context.Background() }

func newSys(t *testing.T, cfg Config) *System {
	t.Helper()
	if cfg.Sites == 0 {
		cfg.Sites = 3
	}
	if cfg.Items == 0 {
		cfg.Items = 2
	}
	if cfg.InitialAmount == 0 {
		cfg.InitialAmount = 100
	}
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = time.Second
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRemoteUpdateCostsOneCorrespondence(t *testing.T) {
	s := newSys(t, Config{})
	key := s.Keys[0]
	if err := s.Update(bg(), 1, key, -10); err != nil {
		t.Fatal(err)
	}
	if got := s.Registry.TotalCorrespondences(); got != 1 {
		t.Fatalf("correspondences = %d, want 1", got)
	}
	if v, _ := s.CentralValue(key); v != 90 {
		t.Fatalf("central value = %d", v)
	}
	// Attribution is to the updating site.
	if s.Registry.MessagesBySite()[1] != 2 {
		t.Fatalf("bySite = %v", s.Registry.MessagesBySite())
	}
}

func TestCentralUpdateIsFree(t *testing.T) {
	s := newSys(t, Config{})
	if err := s.Update(bg(), 0, s.Keys[0], 50); err != nil {
		t.Fatal(err)
	}
	if got := s.Registry.TotalMessages(); got != 0 {
		t.Fatalf("central local update sent %d messages", got)
	}
	if v, _ := s.CentralValue(s.Keys[0]); v != 150 {
		t.Fatalf("value = %d", v)
	}
}

func TestRejectsNegativeStock(t *testing.T) {
	s := newSys(t, Config{})
	if err := s.Update(bg(), 1, s.Keys[0], -500); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v", err)
	}
	if v, _ := s.CentralValue(s.Keys[0]); v != 100 {
		t.Fatalf("rejected update mutated state: %d", v)
	}
	if err := s.Update(bg(), 0, s.Keys[0], -500); !errors.Is(err, ErrRejected) {
		t.Fatalf("central-origin err = %v", err)
	}
}

func TestUnknownKey(t *testing.T) {
	s := newSys(t, Config{})
	if err := s.Update(bg(), 1, "ghost", 1); err == nil {
		t.Fatal("unknown key accepted")
	}
}

func TestReadRoundTrip(t *testing.T) {
	s := newSys(t, Config{})
	s.Update(bg(), 1, s.Keys[0], -25)
	v, err := s.Read(bg(), 2, s.Keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if v != 75 {
		t.Fatalf("read = %d", v)
	}
	// That read cost a correspondence too (non-broadcast mode).
	byKind := s.Registry.MessagesByKind()
	if byKind["read"] != 1 || byKind["read.reply"] != 1 {
		t.Fatalf("byKind = %v", byKind)
	}
}

func TestBroadcastMaintainsReplicas(t *testing.T) {
	s := newSys(t, Config{Broadcast: true})
	key := s.Keys[0]
	if err := s.Update(bg(), 1, key, -30); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 3; id++ {
		v, err := s.Read(bg(), id, key)
		if err != nil {
			t.Fatal(err)
		}
		if v != 70 {
			t.Fatalf("site %d replica = %d", id, v)
		}
	}
	// 1 update correspondence + 2 broadcast correspondences.
	if got := s.Registry.TotalCorrespondences(); got != 3 {
		t.Fatalf("correspondences = %d, want 3", got)
	}
}

func TestCentralUnreachableFailsUpdate(t *testing.T) {
	s := newSys(t, Config{CallTimeout: 200 * time.Millisecond})
	s.Net.Crash(0)
	err := s.Update(bg(), 1, s.Keys[0], -1)
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v — the single point of failure must fail closed", err)
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New(Config{Sites: 0, Items: 1}); err == nil {
		t.Fatal("0 sites accepted")
	}
}
