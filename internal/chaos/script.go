package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"avdb/internal/wire"
)

// Env is the world a Script acts on. The cluster package adapts its
// site set to this interface; tests can stub it.
type Env interface {
	// Sites lists every site in the scenario.
	Sites() []wire.SiteID
	// Crash tears site down (its node leaves the network; in-memory
	// state is lost).
	Crash(site wire.SiteID) error
	// Restart rebuilds a crashed site from its durable state (WAL).
	Restart(site wire.SiteID) error
}

// Op is one kind of scripted action.
type Op int

// Script operations.
const (
	// OpPartition severs the two site groups from each other.
	OpPartition Op = iota
	// OpPartitionOneWay severs messages from Sites[0] to Sites[1] only.
	OpPartitionOneWay
	// OpHeal removes all partitions.
	OpHeal
	// OpCrash crashes Sites[0].
	OpCrash
	// OpRestart restarts Sites[0] from its WAL.
	OpRestart
	// OpDrop sets the default per-message drop probability to Prob.
	OpDrop
)

var opNames = map[Op]string{
	OpPartition:       "partition",
	OpPartitionOneWay: "partition-oneway",
	OpHeal:            "heal",
	OpCrash:           "crash",
	OpRestart:         "restart",
	OpDrop:            "drop",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Step is one timed action. At is a logical tick: the driver advances
// its own tick counter (one per workload operation, say) and applies
// every step whose tick has arrived.
type Step struct {
	At    int64
	Op    Op
	Sites []wire.SiteID // OpPartition: groups split by GroupSplit; others: operand sites
	// GroupSplit is the index in Sites where group B starts (OpPartition).
	GroupSplit int
	// Prob is the drop probability operand (OpDrop).
	Prob float64
}

// Script is a deterministic fault schedule: steps sorted by tick,
// applied at most once each.
type Script struct {
	steps []Step
	next  int
}

// NewScript returns a script over the given steps (sorted by At;
// ties apply in the order given).
func NewScript(steps []Step) *Script {
	s := &Script{steps: append([]Step(nil), steps...)}
	sort.SliceStable(s.steps, func(i, j int) bool { return s.steps[i].At < s.steps[j].At })
	return s
}

// Done reports whether every step has been applied.
func (s *Script) Done() bool { return s.next >= len(s.steps) }

// Steps returns a copy of the script's steps in application order. The
// simulator's schedule minimizer uses this to re-run a failing scenario
// with subsets of the original faults.
func (s *Script) Steps() []Step {
	return append([]Step(nil), s.steps...)
}

// String renders the step as a line Parse accepts.
func (s Step) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "at %d %s", s.At, s.Op)
	switch s.Op {
	case OpPartition:
		for i, id := range s.Sites {
			if i == s.GroupSplit {
				b.WriteString(" |")
			}
			fmt.Fprintf(&b, " %d", id)
		}
	case OpDrop:
		fmt.Fprintf(&b, " %s", strconv.FormatFloat(s.Prob, 'g', -1, 64))
	default:
		for _, id := range s.Sites {
			fmt.Fprintf(&b, " %d", id)
		}
	}
	return b.String()
}

// FormatSteps renders steps as script text that Parse round-trips.
func FormatSteps(steps []Step) string {
	var b strings.Builder
	for _, st := range steps {
		b.WriteString(st.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Advance applies every not-yet-applied step with At <= tick, in
// order, against inj and env. It returns the number of steps applied
// and the first error (later steps still run — a scenario should not
// silently diverge from its schedule because one crash failed).
func (s *Script) Advance(tick int64, inj *Injector, env Env) (int, error) {
	applied := 0
	var firstErr error
	for s.next < len(s.steps) && s.steps[s.next].At <= tick {
		step := s.steps[s.next]
		s.next++
		applied++
		if err := applyStep(step, inj, env); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("chaos: step %d (%s at %d): %w", s.next-1, step.Op, step.At, err)
		}
	}
	return applied, firstErr
}

func applyStep(step Step, inj *Injector, env Env) error {
	switch step.Op {
	case OpPartition:
		split := step.GroupSplit
		if split <= 0 || split >= len(step.Sites) {
			return fmt.Errorf("bad group split %d of %d sites", split, len(step.Sites))
		}
		inj.Partition(step.Sites[:split], step.Sites[split:])
	case OpPartitionOneWay:
		if len(step.Sites) != 2 {
			return fmt.Errorf("partition-oneway needs 2 sites, got %d", len(step.Sites))
		}
		inj.PartitionOneWay(step.Sites[0], step.Sites[1])
	case OpHeal:
		inj.Heal()
	case OpCrash:
		if len(step.Sites) != 1 {
			return fmt.Errorf("crash needs 1 site, got %d", len(step.Sites))
		}
		return env.Crash(step.Sites[0])
	case OpRestart:
		if len(step.Sites) != 1 {
			return fmt.Errorf("restart needs 1 site, got %d", len(step.Sites))
		}
		return env.Restart(step.Sites[0])
	case OpDrop:
		inj.SetDefault(LinkFaults{Drop: step.Prob})
	default:
		return fmt.Errorf("unknown op %v", step.Op)
	}
	return nil
}

// Parse reads a scenario from text, one step per line:
//
//	at 100 partition 1 2 | 3
//	at 150 partition-oneway 1 3
//	at 200 crash 2
//	at 250 restart 2
//	at 300 drop 0.05
//	at 400 heal
//
// Blank lines and lines starting with '#' are ignored. Site operands
// are site IDs; '|' splits the two partition groups.
func Parse(text string) (*Script, error) {
	var steps []Step
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		step, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("chaos: line %d: %w", lineNo+1, err)
		}
		steps = append(steps, step)
	}
	return NewScript(steps), nil
}

func parseLine(line string) (Step, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "at" {
		return Step{}, fmt.Errorf("want %q, got %q", "at <tick> <op> ...", line)
	}
	tick, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Step{}, fmt.Errorf("bad tick %q: %v", fields[1], err)
	}
	step := Step{At: tick}
	opName, args := fields[2], fields[3:]
	switch opName {
	case "partition":
		step.Op = OpPartition
		for _, a := range args {
			if a == "|" {
				step.GroupSplit = len(step.Sites)
				continue
			}
			id, err := parseSite(a)
			if err != nil {
				return Step{}, err
			}
			step.Sites = append(step.Sites, id)
		}
		if step.GroupSplit == 0 {
			return Step{}, fmt.Errorf("partition needs a %q group separator", "|")
		}
	case "partition-oneway":
		step.Op = OpPartitionOneWay
		if err := parseSites(&step, args, 2); err != nil {
			return Step{}, err
		}
	case "heal":
		step.Op = OpHeal
	case "crash":
		step.Op = OpCrash
		if err := parseSites(&step, args, 1); err != nil {
			return Step{}, err
		}
	case "restart":
		step.Op = OpRestart
		if err := parseSites(&step, args, 1); err != nil {
			return Step{}, err
		}
	case "drop":
		step.Op = OpDrop
		if len(args) != 1 {
			return Step{}, fmt.Errorf("drop needs 1 probability, got %d args", len(args))
		}
		p, err := strconv.ParseFloat(args[0], 64)
		if err != nil || p < 0 || p > 1 {
			return Step{}, fmt.Errorf("bad drop probability %q", args[0])
		}
		step.Prob = p
	default:
		return Step{}, fmt.Errorf("unknown op %q", opName)
	}
	return step, nil
}

func parseSite(s string) (wire.SiteID, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad site id %q: %v", s, err)
	}
	return wire.SiteID(v), nil
}

func parseSites(step *Step, args []string, want int) error {
	if len(args) != want {
		return fmt.Errorf("%s needs %d site(s), got %d", step.Op, want, len(args))
	}
	for _, a := range args {
		id, err := parseSite(a)
		if err != nil {
			return err
		}
		step.Sites = append(step.Sites, id)
	}
	return nil
}
