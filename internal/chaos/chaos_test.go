package chaos

import (
	"fmt"
	"testing"
	"time"

	"avdb/internal/wire"
)

func TestInjectorDefaultIsClean(t *testing.T) {
	inj := NewInjector(1)
	for i := 0; i < 100; i++ {
		f := inj.Intercept(1, 2, false, wire.KindAVRequest)
		if f.Drop || f.Duplicate || f.Delay != 0 {
			t.Fatalf("unconfigured injector produced fault %+v", f)
		}
	}
}

func TestInjectorDeterministic(t *testing.T) {
	run := func() []transportFaultKey {
		inj := NewInjector(42)
		inj.SetDefault(LinkFaults{Drop: 0.3, Duplicate: 0.2, Delay: time.Millisecond, DelayProb: 0.5})
		var out []transportFaultKey
		for i := 0; i < 200; i++ {
			f := inj.Intercept(1, 2, i%2 == 0, wire.KindAVRequest)
			out = append(out, transportFaultKey{f.Drop, f.Duplicate, f.Delay})
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

type transportFaultKey struct {
	drop, dup bool
	delay     time.Duration
}

func TestInjectorDropRate(t *testing.T) {
	inj := NewInjector(7)
	inj.SetDefault(LinkFaults{Drop: 0.25})
	drops := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if inj.Intercept(1, 2, false, wire.KindAVRequest).Drop {
			drops++
		}
	}
	if drops < n/5 || drops > n/3 {
		t.Fatalf("drop rate %d/%d far from 0.25", drops, n)
	}
}

func TestInjectorPartition(t *testing.T) {
	inj := NewInjector(1)
	inj.Partition([]wire.SiteID{1}, []wire.SiteID{2, 3})
	if !inj.Intercept(1, 2, false, wire.KindAVRequest).Drop {
		t.Fatal("1->2 not severed")
	}
	if !inj.Intercept(3, 1, true, wire.KindAVReply).Drop {
		t.Fatal("3->1 not severed")
	}
	if inj.Intercept(2, 3, false, wire.KindAVRequest).Drop {
		t.Fatal("2->3 severed but both are in group B")
	}
	inj.Heal()
	if inj.Intercept(1, 2, false, wire.KindAVRequest).Drop {
		t.Fatal("heal did not restore 1->2")
	}
}

func TestInjectorOneWayPartition(t *testing.T) {
	inj := NewInjector(1)
	inj.PartitionOneWay(1, 2)
	if !inj.Intercept(1, 2, false, wire.KindAVRequest).Drop {
		t.Fatal("1->2 not severed")
	}
	if inj.Intercept(2, 1, false, wire.KindAVRequest).Drop {
		t.Fatal("reverse direction severed by one-way partition")
	}
}

func TestInjectorPerLinkOverride(t *testing.T) {
	inj := NewInjector(9)
	inj.SetLink(1, 2, LinkFaults{Drop: 1})
	if !inj.Intercept(1, 2, false, wire.KindAVRequest).Drop {
		t.Fatal("per-link drop=1 did not drop")
	}
	if inj.Intercept(1, 3, false, wire.KindAVRequest).Drop {
		t.Fatal("other link affected by per-link override")
	}
}

func TestInjectorDisable(t *testing.T) {
	inj := NewInjector(1)
	inj.SetDefault(LinkFaults{Drop: 1})
	inj.Partition([]wire.SiteID{1}, []wire.SiteID{2})
	inj.Disable()
	if f := inj.Intercept(1, 2, false, wire.KindAVRequest); f.Drop {
		t.Fatal("disabled injector still dropping")
	}
	inj.Enable()
	if !inj.Intercept(1, 2, false, wire.KindAVRequest).Drop {
		t.Fatal("enable did not restore faults")
	}
}

// scriptEnv records crash/restart calls.
type scriptEnv struct {
	sites []wire.SiteID
	log   []string
}

func (e *scriptEnv) Sites() []wire.SiteID { return e.sites }
func (e *scriptEnv) Crash(s wire.SiteID) error {
	e.log = append(e.log, fmt.Sprintf("crash %d", s))
	return nil
}
func (e *scriptEnv) Restart(s wire.SiteID) error {
	e.log = append(e.log, fmt.Sprintf("restart %d", s))
	return nil
}

func TestScriptParseAndAdvance(t *testing.T) {
	script, err := Parse(`
# scenario: drop, partition, crash-restart, heal
at 10 drop 0.05
at 20 partition 0 1 | 2
at 30 crash 2
at 40 restart 2
at 50 heal
`)
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(1)
	env := &scriptEnv{sites: []wire.SiteID{0, 1, 2}}

	if n, err := script.Advance(5, inj, env); n != 0 || err != nil {
		t.Fatalf("Advance(5) = %d, %v", n, err)
	}
	if n, err := script.Advance(25, inj, env); n != 2 || err != nil {
		t.Fatalf("Advance(25) = %d, %v", n, err)
	}
	if !inj.Intercept(0, 2, false, wire.KindAVRequest).Drop {
		t.Fatal("partition step not applied")
	}
	if n, err := script.Advance(50, inj, env); n != 3 || err != nil {
		t.Fatalf("Advance(50) = %d, %v", n, err)
	}
	if !script.Done() {
		t.Fatal("script not done")
	}
	want := []string{"crash 2", "restart 2"}
	if len(env.log) != len(want) || env.log[0] != want[0] || env.log[1] != want[1] {
		t.Fatalf("env log = %v want %v", env.log, want)
	}
	// Healed, and default drop 0.05 still active (probabilistic — just
	// check the partition is gone by sampling; drop=0.05 rarely fires 40x
	// in a row).
	dropped := 0
	for i := 0; i < 40; i++ {
		if inj.Intercept(0, 2, false, wire.KindAVRequest).Drop {
			dropped++
		}
	}
	if dropped == 40 {
		t.Fatal("heal did not remove partition")
	}
}

func TestScriptParseErrors(t *testing.T) {
	for _, bad := range []string{
		"at x crash 1",
		"at 10 crash",
		"at 10 partition 1 2",
		"at 10 drop 1.5",
		"at 10 explode 1",
		"crash 1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestScriptStepOrder(t *testing.T) {
	script := NewScript([]Step{
		{At: 30, Op: OpRestart, Sites: []wire.SiteID{1}},
		{At: 10, Op: OpCrash, Sites: []wire.SiteID{1}},
	})
	inj := NewInjector(1)
	env := &scriptEnv{sites: []wire.SiteID{1}}
	script.Advance(100, inj, env)
	if len(env.log) != 2 || env.log[0] != "crash 1" || env.log[1] != "restart 1" {
		t.Fatalf("steps applied out of order: %v", env.log)
	}
}
