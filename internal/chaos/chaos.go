// Package chaos injects deterministic network faults into avdb's
// transports. An Injector implements transport.Interceptor: both memnet
// and tcpnet consult it on every message they are about to deliver, so
// one seeded Injector drives per-link drop/delay/duplication,
// symmetric and asymmetric partitions — reproducibly, from a single
// seed. A Script layers scenario control on top: a sequence of timed
// steps (partition, heal, crash, restart, drop-rate changes) applied to
// an Env (the cluster package adapts its site set), which is how the
// conservation soak tests drive drops + partitions + crash-restarts
// from one deterministic schedule.
package chaos

import (
	"sync"
	"time"

	"avdb/internal/rng"
	"avdb/internal/transport"
	"avdb/internal/wire"
)

// link is a directed site pair.
type link struct {
	from, to wire.SiteID
}

// LinkFaults are the probabilistic faults applied to one direction of
// one link (or, via Injector.SetDefault, to every link).
type LinkFaults struct {
	// Drop is the probability in [0, 1] a message is discarded.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Delay is the maximum extra delivery latency; each delayed message
	// draws uniformly from [0, Delay].
	Delay time.Duration
	// DelayProb is the probability a message is delayed at all.
	DelayProb float64
}

// Injector is a seeded transport.Interceptor. The zero value is not
// usable; construct with NewInjector. All methods are safe for
// concurrent use.
type Injector struct {
	mu       sync.Mutex
	seed     uint64
	streams  map[link]*rng.Rand
	def      LinkFaults
	perLink  map[link]*LinkFaults
	severed  map[link]bool // one-way partitions: from -> to blocked
	disabled bool
}

// NewInjector returns an injector drawing from deterministic streams
// seeded with seed. Each directed link has its own stream (derived from
// the seed and the link endpoints), so the fault decision for the Nth
// message on a link depends only on N — never on how concurrent sends on
// *other* links interleave. With no further configuration the injector
// injects nothing.
func NewInjector(seed uint64) *Injector {
	return &Injector{
		seed:    seed,
		streams: make(map[link]*rng.Rand),
		perLink: make(map[link]*LinkFaults),
		severed: make(map[link]bool),
	}
}

// stream returns the per-link rng, creating it deterministically from
// the injector seed and the link endpoints on first use. Callers hold
// inj.mu.
func (inj *Injector) stream(l link) *rng.Rand {
	r := inj.streams[l]
	if r == nil {
		r = rng.New(inj.seed ^
			(uint64(l.from)+1)*0x9E3779B97F4A7C15 ^
			(uint64(l.to)+1)*0xBF58476D1CE4E5B9)
		inj.streams[l] = r
	}
	return r
}

// SetDefault sets the faults applied to every link without a per-link
// override.
func (inj *Injector) SetDefault(f LinkFaults) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.def = f
}

// SetLink overrides the faults for the directed link from -> to.
func (inj *Injector) SetLink(from, to wire.SiteID, f LinkFaults) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.perLink[link{from, to}] = &f
}

// Partition severs both directions between every pair (a, b) with a in
// groupA and b in groupB.
func (inj *Injector) Partition(groupA, groupB []wire.SiteID) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, a := range groupA {
		for _, b := range groupB {
			inj.severed[link{a, b}] = true
			inj.severed[link{b, a}] = true
		}
	}
}

// PartitionOneWay severs only messages flowing from -> to, modeling an
// asymmetric failure (to can still reach from).
func (inj *Injector) PartitionOneWay(from, to wire.SiteID) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.severed[link{from, to}] = true
}

// Isolate severs both directions between site and every peer in peers.
func (inj *Injector) Isolate(site wire.SiteID, peers []wire.SiteID) {
	inj.Partition([]wire.SiteID{site}, peers)
}

// Heal removes every partition (probabilistic faults keep applying).
func (inj *Injector) Heal() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.severed = make(map[link]bool)
}

// HealLink restores the directed link from -> to.
func (inj *Injector) HealLink(from, to wire.SiteID) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	delete(inj.severed, link{from, to})
}

// Disable turns the injector into a no-op (used to quiesce a scenario
// before checking invariants); Enable restores it.
func (inj *Injector) Disable() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.disabled = true
}

// Enable re-activates a disabled injector.
func (inj *Injector) Enable() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.disabled = false
}

// Intercept implements transport.Interceptor.
func (inj *Injector) Intercept(from, to wire.SiteID, isReply bool, kind wire.Kind) transport.Fault {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.disabled {
		return transport.Fault{}
	}
	if inj.severed[link{from, to}] {
		return transport.Fault{Drop: true}
	}
	f := &inj.def
	if lf := inj.perLink[link{from, to}]; lf != nil {
		f = lf
	}
	var out transport.Fault
	rnd := inj.stream(link{from, to})
	// Always consume the same number of draws per call so the stream
	// position depends only on how many messages were intercepted on this
	// link, not on which faults are configured — reconfiguring
	// mid-scenario (a script step changing drop rates) stays reproducible.
	out.Drop = rnd.Float64() < f.Drop
	out.Duplicate = rnd.Float64() < f.Duplicate
	delayed := rnd.Float64() < f.DelayProb
	delayDraw := rnd.Int63()
	if delayed && f.Delay > 0 {
		out.Delay = time.Duration(delayDraw % (int64(f.Delay) + 1))
	}
	return out
}
