package failure

import (
	"context"
	"errors"
	"testing"
	"time"

	"avdb/internal/clock"
)

func TestPolicyBackoffGrowth(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v want %v", i+1, got, w)
		}
	}
	if got := p.Backoff(0); got != 0 {
		t.Errorf("Backoff(0) = %v want 0", got)
	}
}

func TestRetrierSucceedsAfterFailures(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	r := NewRetrier(Policy{MaxAttempts: 5, BaseDelay: time.Second}, vc, 1)
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- r.Do(context.Background(), func(context.Context) error {
			calls++
			if calls < 3 {
				return errors.New("boom")
			}
			return nil
		})
	}()
	for i := 0; i < 2; i++ {
		waitPending(t, vc)
		// Backoff doubles: 1s then 2s.
		vc.Advance(time.Duration(1<<i) * time.Second)
	}
	if err := <-done; err != nil {
		t.Fatalf("Do = %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d want 3", calls)
	}
	if r.Retries.Value() != 2 {
		t.Fatalf("Retries = %d want 2", r.Retries.Value())
	}
}

func TestRetrierExhaustsAttempts(t *testing.T) {
	r := NewRetrier(Policy{MaxAttempts: 3}, clock.NewVirtual(time.Unix(0, 0)), 1)
	boom := errors.New("boom")
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v want %v", err, boom)
	}
	if calls != 3 {
		t.Fatalf("calls = %d want 3", calls)
	}
}

func TestRetrierHonorsContext(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	r := NewRetrier(Policy{MaxAttempts: 10, BaseDelay: time.Minute}, vc, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- r.Do(ctx, func(context.Context) error { return errors.New("boom") })
	}()
	waitPending(t, vc) // sleeping its first backoff
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v want context.Canceled", err)
	}
}

func TestRetrierJitterShrinksDelay(t *testing.T) {
	p := Policy{MaxAttempts: 2, BaseDelay: time.Second, Jitter: 0.5}
	r := NewRetrier(p, clock.Real{}, 42)
	for i := 0; i < 100; i++ {
		d := r.jittered(time.Second)
		if d < 500*time.Millisecond || d > time.Second {
			t.Fatalf("jittered delay %v outside [500ms, 1s]", d)
		}
	}
}

// waitPending spins until the virtual clock has a sleeper registered.
func waitPending(t *testing.T, vc *clock.Virtual) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for vc.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no timer registered")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDetectorThresholdSuspicion(t *testing.T) {
	d := NewDetector(time.Hour, clock.NewVirtual(time.Unix(0, 0)))
	for i := 0; i < FailureThreshold-1; i++ {
		d.ReportFailure(2)
		if d.Suspect(2) {
			t.Fatalf("suspect after %d failures", i+1)
		}
	}
	d.ReportFailure(2)
	if !d.Suspect(2) {
		t.Fatal("not suspect after threshold failures")
	}
	if d.Suspicions.Value() != 1 {
		t.Fatalf("Suspicions = %d want 1", d.Suspicions.Value())
	}
	// More failures don't re-count the transition.
	d.ReportFailure(2)
	if d.Suspicions.Value() != 1 {
		t.Fatalf("Suspicions = %d want 1", d.Suspicions.Value())
	}
}

func TestDetectorWindowSuspicion(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	d := NewDetector(10*time.Second, vc)
	d.ReportFailure(3)
	if d.Suspect(3) {
		t.Fatal("suspect on first failure")
	}
	vc.Advance(11 * time.Second)
	d.ReportFailure(3)
	if !d.Suspect(3) {
		t.Fatal("not suspect after streak outlasted the window")
	}
}

func TestDetectorSuccessClearsSuspicion(t *testing.T) {
	d := NewDetector(time.Hour, clock.NewVirtual(time.Unix(0, 0)))
	for i := 0; i < FailureThreshold; i++ {
		d.ReportFailure(2)
	}
	if !d.Suspect(2) {
		t.Fatal("not suspect")
	}
	d.ReportSuccess(2)
	if d.Suspect(2) {
		t.Fatal("still suspect after success")
	}
	// Streak restarts from scratch.
	d.ReportFailure(2)
	if d.Suspect(2) {
		t.Fatal("suspect after a single post-recovery failure")
	}
}

func TestDetectorSuspects(t *testing.T) {
	d := NewDetector(time.Hour, clock.NewVirtual(time.Unix(0, 0)))
	for i := 0; i < FailureThreshold; i++ {
		d.ReportFailure(5)
	}
	d.ReportSuccess(6)
	got := d.Suspects()
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("Suspects = %v want [5]", got)
	}
}

func TestDetectorIdlePeerNeverSuspect(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	d := NewDetector(time.Second, vc)
	d.ReportSuccess(4)
	vc.Advance(time.Hour)
	if d.Suspect(4) {
		t.Fatal("idle peer became suspect without failures")
	}
}
