// Package failure supplies the two ingredients every robust protocol
// layer in avdb shares: a retry policy (exponential backoff with
// jitter, bounded attempts, context deadlines) and a per-peer failure
// detector (recent-success heartbeat accounting with a suspicion
// window).
//
// The paper assumes the Delay-Update path keeps working when
// communication is expensive or unavailable; this package is where
// "unavailable" becomes a first-class input rather than an unhandled
// error. The accelerator consults the Detector to skip suspect peers
// in its selecting step, the 2PC coordinator retries decision delivery
// through a Retrier, and replica flush backs off dead peers instead of
// hammering them.
package failure

import (
	"context"
	"sync"
	"time"

	"avdb/internal/clock"
	"avdb/internal/metrics"
	"avdb/internal/rng"
	"avdb/internal/wire"
)

// Policy describes a bounded exponential backoff.
type Policy struct {
	// MaxAttempts caps the number of calls to fn (>= 1). 0 means 1.
	MaxAttempts int
	// BaseDelay is the wait after the first failure.
	BaseDelay time.Duration
	// MaxDelay caps the grown delay. 0 means no cap.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts. Values < 1 mean 2.
	Multiplier float64
	// Jitter is the fraction of each delay randomized away (0..1): the
	// actual wait is uniform in [delay*(1-Jitter), delay]. Jitter keeps
	// retries from synchronizing across sites after a shared outage.
	Jitter float64
}

// Backoff returns the wait before attempt n (n = 1 is the wait after
// the first failure), before jitter.
func (p Policy) Backoff(n int) time.Duration {
	if n < 1 || p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		return p.MaxDelay
	}
	return time.Duration(d)
}

// Retrier runs operations under a Policy. It is safe for concurrent
// use; each Do draws jitter from its own child generator.
type Retrier struct {
	policy Policy
	clock  clock.Clock

	mu  sync.Mutex
	rnd *rng.Rand

	// Retries counts backoff waits taken (attempts beyond the first).
	Retries metrics.Counter
}

// NewRetrier builds a Retrier. clk may be nil (wall clock); seed makes
// jitter deterministic for tests.
func NewRetrier(p Policy, clk clock.Clock, seed uint64) *Retrier {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Retrier{policy: p, clock: clk, rnd: rng.New(seed)}
}

// Policy returns the retrier's policy.
func (r *Retrier) Policy() Policy { return r.policy }

// Do calls fn until it succeeds, the policy's attempts are exhausted
// (returning fn's last error), or ctx is done (returning ctx.Err()).
// Between attempts it sleeps the policy's jittered backoff on the
// retrier's clock, aborting the sleep when ctx expires.
func (r *Retrier) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	attempts := r.policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for n := 1; ; n++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		lastErr = fn(ctx)
		if lastErr == nil {
			return nil
		}
		if n >= attempts {
			return lastErr
		}
		wait := r.jittered(r.policy.Backoff(n))
		if wait > 0 {
			r.Retries.Inc()
			t := clock.NewTimer(r.clock, wait)
			select {
			case <-ctx.Done():
				t.Stop() // an abandoned wait must not linger on a virtual clock
				return ctx.Err()
			case <-t.C:
			}
		} else {
			r.Retries.Inc()
		}
	}
}

// jittered shrinks d by a uniform fraction of Policy.Jitter.
func (r *Retrier) jittered(d time.Duration) time.Duration {
	if d <= 0 || r.policy.Jitter <= 0 {
		return d
	}
	j := r.policy.Jitter
	if j > 1 {
		j = 1
	}
	r.mu.Lock()
	f := r.rnd.Float64()
	r.mu.Unlock()
	return d - time.Duration(float64(d)*j*f)
}

// Detector tracks per-peer liveness. A peer becomes suspect when a
// losing streak of failures has lasted at least the suspicion window,
// or has reached FailureThreshold consecutive failures — silence alone
// (an idle link) never condemns a peer. Heartbeats (site.heartbeatLoop)
// guarantee regular contact attempts, so a dead peer accumulates
// failures and crosses either trigger quickly.
type Detector struct {
	suspectAfter time.Duration
	clock        clock.Clock

	mu    sync.Mutex
	peers map[wire.SiteID]*peerState

	// Suspicions counts peer transitions into the suspect state.
	Suspicions metrics.Counter
}

type peerState struct {
	streakStart time.Time // first failure of the current losing streak
	failures    int       // consecutive failures since last success
	suspect     bool
}

// DefaultSuspectAfter is the suspicion window used when none is given.
const DefaultSuspectAfter = 3 * time.Second

// FailureThreshold is the consecutive-failure count that suspects a
// peer regardless of how little wall time the streak spanned.
const FailureThreshold = 3

// NewDetector builds a detector. clk may be nil (wall clock);
// suspectAfter <= 0 selects DefaultSuspectAfter.
func NewDetector(suspectAfter time.Duration, clk clock.Clock) *Detector {
	if clk == nil {
		clk = clock.Real{}
	}
	if suspectAfter <= 0 {
		suspectAfter = DefaultSuspectAfter
	}
	return &Detector{
		suspectAfter: suspectAfter,
		clock:        clk,
		peers:        make(map[wire.SiteID]*peerState),
	}
}

// ReportSuccess records a successful exchange with peer, clearing any
// suspicion.
func (d *Detector) ReportSuccess(peer wire.SiteID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.peer(peer)
	p.streakStart = time.Time{}
	p.failures = 0
	p.suspect = false
}

// ReportFailure records a failed exchange with peer (timeout,
// unreachable).
func (d *Detector) ReportFailure(peer wire.SiteID) {
	now := d.clock.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.peer(peer)
	if p.failures == 0 {
		p.streakStart = now
	}
	p.failures++
	if p.suspect {
		return
	}
	if p.failures >= FailureThreshold || now.Sub(p.streakStart) >= d.suspectAfter {
		p.suspect = true
		d.Suspicions.Inc()
	}
}

// peer returns (creating) the state for id. Caller holds d.mu.
func (d *Detector) peer(id wire.SiteID) *peerState {
	p := d.peers[id]
	if p == nil {
		p = &peerState{}
		d.peers[id] = p
	}
	return p
}

// Suspect reports whether peer is currently suspected down.
func (d *Detector) Suspect(peer wire.SiteID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	p := d.peers[peer]
	return p != nil && p.suspect
}

// Suspects returns the currently suspected peers (unordered).
func (d *Detector) Suspects() []wire.SiteID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []wire.SiteID
	for id, p := range d.peers {
		if p.suspect {
			out = append(out, id)
		}
	}
	return out
}
