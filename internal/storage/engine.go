package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"avdb/internal/btree"
	"avdb/internal/clock"
	"avdb/internal/epoch"
	"avdb/internal/wal"
)

const (
	snapshotName = "snapshot.db"
	snapshotTmp  = "snapshot.tmp"
	snapMagic    = "AVDBSNP1"
)

// numStripes is the number of lock stripes the key space is hashed
// into. A power of two so the stripe index is a mask, sized so that on
// any realistic core count independent keys almost never share a
// stripe.
const numStripes = 32

// stripeOf hashes a key (FNV-1a) to its stripe index.
func stripeOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h & (numStripes - 1))
}

// Options configure an Engine.
type Options struct {
	// Dir is the data directory. Empty means a purely in-memory engine
	// (no WAL, no snapshots) — used by counting experiments where the
	// durability path is not under measurement.
	Dir string
	// NoSync disables fsync on the WAL (passed through to wal.Options).
	NoSync bool
	// SegmentMaxBytes is passed through to wal.Options.
	SegmentMaxBytes int64
	// MaxSyncDelay is passed through to wal.Options (group-commit stall).
	MaxSyncDelay time.Duration
	// Stats is passed through to wal.Options (shared fsync counters).
	Stats *wal.Stats
	// EpochInterval, when positive on a durable engine, routes Apply's
	// durability wait through an epoch manager: commits apply immediately
	// and their acknowledgements ride epoch boundaries, amortizing one
	// covering fsync across every commit in the epoch. Zero keeps the
	// per-commit group-commit SyncTo path.
	EpochInterval time.Duration
	// EpochMaxCommits closes an epoch early once it holds this many
	// commits (0 means epoch.DefaultMaxCommits; negative disables).
	EpochMaxCommits int
	// EpochAdaptive turns on the epoch manager's adaptive interval
	// controller; EpochMinInterval/EpochMaxInterval clamp it (see
	// epoch.Options).
	EpochAdaptive    bool
	EpochMinInterval time.Duration
	EpochMaxInterval time.Duration
	// EpochOnDurable, when non-nil, fires each time the durable epoch
	// watermark advances (see epoch.Options.OnDurable).
	EpochOnDurable func(epoch uint64)
	// Clock drives epoch deadlines (nil means the real clock).
	Clock clock.Clock
	// EpochStats, when non-nil, receives epoch counters (shareable with
	// other managers of the same site).
	EpochStats *epoch.Stats
}

// stripe is one lock-striped partition of the key space: keys hash to a
// stripe, and point operations only contend with other keys of the same
// stripe instead of serializing the whole engine.
type stripe struct {
	mu        sync.RWMutex
	mem       *btree.Tree
	metaCount int // rows under MetaPrefix, excluded from Len and Scan
}

// Engine is a site's local database. It is safe for concurrent use:
// the record table is partitioned into numStripes hash stripes, each
// with its own RWMutex, so Delay Updates to independent keys proceed in
// parallel. Multi-key batches lock their stripes in ascending index
// order (deadlock freedom); whole-table operations (Scan, Checkpoint,
// Close) lock every stripe.
type Engine struct {
	opts Options

	stripes [numStripes]stripe
	log     *wal.Log       // nil when in-memory; internally synchronized
	epochs  *epoch.Manager // nil unless EpochInterval > 0 on a durable engine
	closed  bool           // guarded by holding all stripe locks to set, any one to read

	// lastLSN is the highest LSN whose batch has been applied to the
	// table. Durable engines take LSNs from the WAL; in-memory engines
	// mint dense virtual LSNs from this counter so downstream consumers
	// (the read plane) see a uniform cursor either way.
	lastLSN atomic.Uint64
	// observer, when set, is called for every applied batch while the
	// batch's stripe locks are still held (so observation order for
	// conflicting batches matches apply order). Set before concurrent
	// use; it must not call back into the engine.
	observer func(lsn uint64, ops []Op)
}

// Open opens (or creates, or recovers) an engine.
func Open(opts Options) (*Engine, error) {
	e := &Engine{opts: opts}
	for i := range e.stripes {
		e.stripes[i].mem = &btree.Tree{}
	}
	if opts.Dir == "" {
		return e, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	snapLSN, err := e.loadSnapshot()
	if err != nil {
		return nil, err
	}
	log, err := wal.Open(filepath.Join(opts.Dir, "wal"), wal.Options{
		NoSync:          opts.NoSync,
		SegmentMaxBytes: opts.SegmentMaxBytes,
		MaxSyncDelay:    opts.MaxSyncDelay,
		Stats:           opts.Stats,
	})
	if err != nil {
		return nil, err
	}
	e.log = log
	err = log.Replay(snapLSN+1, func(lsn uint64, payload []byte) error {
		ops, err := decodeBatch(payload)
		if err != nil {
			return err
		}
		// Replay applies without validation: the batch was validated when
		// first written, and partially-known state (post-snapshot deltas
		// to rows created before the snapshot) must still apply.
		e.applyOps(ops)
		return nil
	})
	if err != nil {
		log.Close()
		return nil, err
	}
	e.lastLSN.Store(log.NextLSN() - 1)
	if opts.EpochInterval > 0 {
		e.epochs = epoch.New(epoch.Options{
			Interval:    opts.EpochInterval,
			MaxCommits:  opts.EpochMaxCommits,
			Clock:       opts.Clock,
			Sync:        log.SyncTo,
			Stats:       opts.EpochStats,
			Adaptive:    opts.EpochAdaptive,
			MinInterval: opts.EpochMinInterval,
			MaxInterval: opts.EpochMaxInterval,
			OnDurable:   opts.EpochOnDurable,
		})
	}
	return e, nil
}

// Epochs returns the engine's epoch manager, nil when epoch commit is
// off (or the engine is in-memory).
func (e *Engine) Epochs() *epoch.Manager { return e.epochs }

// SetApplyObserver installs fn to be called for every applied batch
// with the batch's LSN and ops. It is called while the batch's stripe
// locks are held: keep it brief and never call back into the engine.
// Install before the engine sees concurrent use.
func (e *Engine) SetApplyObserver(fn func(lsn uint64, ops []Op)) {
	e.observer = fn
}

// LastLSN returns the LSN of the most recently applied batch (0 before
// any batch). For in-memory engines this is a virtual counter with the
// same density guarantees as WAL LSNs.
func (e *Engine) LastLSN() uint64 { return e.lastLSN.Load() }

// storageKey returns the key an op actually occupies in the table
// (meta ops live under MetaPrefix).
func storageKey(op *Op) string {
	if op.Kind == OpMetaPut || op.Kind == OpMetaDelete {
		return MetaPrefix + op.Key
	}
	return op.Key
}

// lockStripes write-locks the given stripe set in ascending order.
// stripesFor output is sorted and deduplicated, so concurrent batches
// always acquire in the same global order.
func (e *Engine) lockStripes(idx []int) {
	for _, i := range idx {
		e.stripes[i].mu.Lock()
	}
}

func (e *Engine) unlockStripes(idx []int) {
	for i := len(idx) - 1; i >= 0; i-- {
		e.stripes[idx[i]].mu.Unlock()
	}
}

// stripesFor returns the sorted, deduplicated stripe indices a batch
// touches.
func stripesFor(ops []Op) []int {
	var mask uint32
	for i := range ops {
		mask |= 1 << uint(stripeOf(storageKey(&ops[i])))
	}
	idx := make([]int, 0, numStripes)
	for i := 0; i < numStripes; i++ {
		if mask&(1<<uint(i)) != 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

// allStripes is the full ascending stripe index set.
var allStripes = func() []int {
	idx := make([]int, numStripes)
	for i := range idx {
		idx[i] = i
	}
	return idx
}()

// lockAll / unlockAll bracket whole-table operations.
func (e *Engine) lockAll()   { e.lockStripes(allStripes) }
func (e *Engine) unlockAll() { e.unlockStripes(allStripes) }

func (e *Engine) rlockAll() {
	for i := range e.stripes {
		e.stripes[i].mu.RLock()
	}
}

func (e *Engine) runlockAll() {
	for i := numStripes - 1; i >= 0; i-- {
		e.stripes[i].mu.RUnlock()
	}
}

// Get returns the record stored under key.
func (e *Engine) Get(key string) (Record, error) {
	s := &e.stripes[stripeOf(key)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e.closed {
		return Record{}, ErrClosed
	}
	v, ok := s.mem.Get(key)
	if !ok {
		return Record{}, ErrNotFound
	}
	var rec Record
	if err := decodeValue(key, v, &rec); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// Amount returns just the stock amount for key.
func (e *Engine) Amount(key string) (int64, error) {
	rec, err := e.Get(key)
	if err != nil {
		return 0, err
	}
	return rec.Amount, nil
}

// Len returns the number of user rows (metadata rows are excluded).
func (e *Engine) Len() int {
	e.rlockAll()
	defer e.runlockAll()
	n := 0
	for i := range e.stripes {
		n += e.stripes[i].mem.Len() - e.stripes[i].metaCount
	}
	return n
}

// mergeScan iterates every stripe's tree in globally ascending key
// order while the caller holds all stripe locks. An empty `from` starts
// at the beginning.
func (e *Engine) mergeScan(from string, fn func(k string, v []byte) bool) {
	var iters [numStripes]btree.Iterator
	for i := range e.stripes {
		iters[i] = e.stripes[i].mem.IterFrom(from)
	}
	for {
		best := -1
		for i := range iters {
			if !iters[i].Valid() {
				continue
			}
			if best < 0 || iters[i].Key() < iters[best].Key() {
				best = i
			}
		}
		if best < 0 {
			return
		}
		if !fn(iters[best].Key(), iters[best].Value()) {
			return
		}
		iters[best].Next()
	}
}

// Scan calls fn for every record in key order until fn returns false.
func (e *Engine) Scan(fn func(rec Record) bool) error {
	e.rlockAll()
	defer e.runlockAll()
	if e.closed {
		return ErrClosed
	}
	var decodeErr error
	e.mergeScan("", func(k string, v []byte) bool {
		if len(k) >= len(MetaPrefix) && k[:len(MetaPrefix)] == MetaPrefix {
			return true // metadata rows are not part of the user schema
		}
		var rec Record
		if err := decodeValue(k, v, &rec); err != nil {
			decodeErr = err
			return false
		}
		return fn(rec)
	})
	return decodeErr
}

// SnapshotAmounts returns every user row's amount together with the
// LSN of the last applied batch, as one consistent pair: all stripe
// read locks are held for the scan, so every batch with LSN <= the
// returned cursor is fully reflected in the map and no later batch is.
// The read plane bootstraps (and resynchronizes) from this.
func (e *Engine) SnapshotAmounts() (map[string]int64, uint64, error) {
	e.rlockAll()
	defer e.runlockAll()
	if e.closed {
		return nil, 0, ErrClosed
	}
	out := make(map[string]int64)
	var decodeErr error
	e.mergeScan("", func(k string, v []byte) bool {
		if len(k) >= len(MetaPrefix) && k[:len(MetaPrefix)] == MetaPrefix {
			return true
		}
		var rec Record
		if err := decodeValue(k, v, &rec); err != nil {
			decodeErr = err
			return false
		}
		out[k] = rec.Amount
		return true
	})
	if decodeErr != nil {
		return nil, 0, decodeErr
	}
	return out, e.lastLSN.Load(), nil
}

// Apply validates and applies a batch of mutations atomically: either
// every op is applied (and logged as one WAL record) or none is. It is
// the single write entry point — Put/Delete/ApplyDelta are conveniences
// over it.
//
// Only the stripes the batch touches are locked, so batches over
// disjoint key sets run concurrently. The WAL append happens while the
// stripe locks are held: any two conflicting batches share a stripe and
// therefore serialize, so replay order always matches apply order for
// ops that do not commute. The fsync wait happens *after* the stripe
// locks are released — concurrent commits share one group-commit fsync
// instead of holding their stripes through it — and Apply returns only
// once its WAL record is durable (so a commit acknowledgement never
// escapes the site for a batch a crash could lose). With epoch commit
// on, the wait rides the open epoch's boundary instead: same record,
// same order, same durable-before-ack guarantee, one covering fsync per
// epoch instead of one group commit per batch.
func (e *Engine) Apply(ops ...Op) error {
	if len(ops) == 0 {
		return nil
	}
	lsn, err := e.applyBatch(ops)
	if err != nil {
		return err
	}
	if e.log != nil && lsn > 0 {
		if e.epochs != nil {
			_, err := e.epochs.Commit(lsn)
			return err
		}
		return e.log.SyncTo(lsn)
	}
	return nil
}

// applied reports a no-op durability wait, shared by every ApplyAsync
// call that has nothing to wait for.
func applied() error { return nil }

// ApplyAsync applies a batch exactly as Apply does but returns before
// the durability wait: the batch is validated, logged, and visible in
// the table, and the returned wait function blocks until its WAL record
// is durable (riding the open epoch's boundary when epoch commit is
// on). This is the pipelined commit path — a caller can keep applying
// batches into epoch N+1 while epoch N's covering fsync drains, as long
// as it withholds every acknowledgement until the matching wait
// returns. For in-memory engines the wait is an immediate no-op.
func (e *Engine) ApplyAsync(ops ...Op) (wait func() error, err error) {
	if len(ops) == 0 {
		return applied, nil
	}
	lsn, err := e.applyBatch(ops)
	if err != nil {
		return nil, err
	}
	if e.log == nil || lsn == 0 {
		return applied, nil
	}
	if e.epochs != nil {
		t, err := e.epochs.Enqueue(lsn)
		if err != nil {
			return nil, err
		}
		return func() error {
			_, err := t.Wait()
			return err
		}, nil
	}
	return func() error { return e.log.SyncTo(lsn) }, nil
}

// applyBatch validates, logs, and applies one batch under its stripe
// locks, returning the batch's WAL LSN (0 when the engine is
// in-memory). Durability is the caller's job.
func (e *Engine) applyBatch(ops []Op) (uint64, error) {
	idx := stripesFor(ops)
	e.lockStripes(idx)
	defer e.unlockStripes(idx)
	if e.closed {
		return 0, ErrClosed
	}
	// Validate first so failures leave no partial state. A batch may
	// legitimately put a row and then delta it, so track keys the batch
	// itself creates or deletes.
	created := map[string]bool{}
	deleted := map[string]bool{}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpPut:
			if op.Key == "" {
				return 0, fmt.Errorf("storage: empty key in put")
			}
			if len(op.Key) >= len(MetaPrefix) && op.Key[:len(MetaPrefix)] == MetaPrefix {
				return 0, fmt.Errorf("storage: user key %q collides with the metadata namespace", op.Key)
			}
			created[op.Key] = true
			delete(deleted, op.Key)
		case OpDelete:
			deleted[op.Key] = true
			delete(created, op.Key)
		case OpDelta:
			if deleted[op.Key] {
				return 0, fmt.Errorf("storage: delta to key %q deleted earlier in batch: %w", op.Key, ErrNotFound)
			}
			if created[op.Key] {
				continue
			}
			if _, ok := e.stripes[stripeOf(op.Key)].mem.Get(op.Key); !ok {
				return 0, fmt.Errorf("storage: delta to %q: %w", op.Key, ErrNotFound)
			}
		case OpMetaPut, OpMetaDelete:
			if op.Key == "" {
				return 0, fmt.Errorf("storage: empty meta key")
			}
		default:
			return 0, fmt.Errorf("storage: unknown op kind %d", op.Kind)
		}
	}
	var lsn uint64
	if e.log != nil {
		var err error
		lsn, err = e.log.Append(encodeBatch(ops))
		if err != nil {
			return 0, err
		}
		// Batches on disjoint stripes race here; keep the max (a batch
		// never observes a lastLSN below its own once it completes).
		for {
			cur := e.lastLSN.Load()
			if lsn <= cur || e.lastLSN.CompareAndSwap(cur, lsn) {
				break
			}
		}
	} else {
		lsn = e.lastLSN.Add(1)
	}
	e.applyOps(ops)
	if e.observer != nil {
		e.observer(lsn, ops)
	}
	return lsn, nil
}

// applyOps applies pre-validated ops. The caller holds the write locks
// of every involved stripe (or has exclusive access during recovery).
func (e *Engine) applyOps(ops []Op) {
	for i := range ops {
		op := &ops[i]
		s := &e.stripes[stripeOf(storageKey(op))]
		switch op.Kind {
		case OpPut:
			rec := op.Rec
			rec.Key = op.Key
			s.mem.Put(op.Key, encodeValue(&rec))
		case OpDelete:
			s.mem.Delete(op.Key)
		case OpDelta:
			v, ok := s.mem.Get(op.Key)
			if !ok {
				// Replay may delta rows that a later snapshot-era op
				// created; in live operation validation prevents this.
				continue
			}
			var rec Record
			if decodeValue(op.Key, v, &rec) != nil {
				continue
			}
			rec.Amount += op.Delta
			s.mem.Put(op.Key, encodeValue(&rec))
		case OpMetaPut:
			if !s.mem.Put(MetaPrefix+op.Key, append([]byte(nil), op.Value...)) {
				s.metaCount++
			}
		case OpMetaDelete:
			if s.mem.Delete(MetaPrefix + op.Key) {
				s.metaCount--
			}
		}
	}
}

// GetMeta returns the raw metadata value stored under key.
func (e *Engine) GetMeta(key string) ([]byte, bool, error) {
	full := MetaPrefix + key
	s := &e.stripes[stripeOf(full)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e.closed {
		return nil, false, ErrClosed
	}
	v, ok := s.mem.Get(full)
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// ScanMeta calls fn for every metadata entry whose key starts with
// prefix, in key order, until fn returns false.
func (e *Engine) ScanMeta(prefix string, fn func(key string, value []byte) bool) error {
	e.rlockAll()
	defer e.runlockAll()
	if e.closed {
		return ErrClosed
	}
	from := MetaPrefix + prefix
	e.mergeScan(from, func(k string, v []byte) bool {
		if len(k) < len(from) || k[:len(from)] != from {
			return false // left the prefix range (meta sorts contiguously)
		}
		return fn(k[len(MetaPrefix):], v)
	})
	return nil
}

// Put inserts or replaces a record.
func (e *Engine) Put(rec Record) error { return e.Apply(PutOp(rec)) }

// Delete removes a record (no error if absent).
func (e *Engine) Delete(key string) error { return e.Apply(DeleteOp(key)) }

// ApplyDelta adds delta to key's Amount and returns the new amount.
func (e *Engine) ApplyDelta(key string, delta int64) (int64, error) {
	if err := e.Apply(DeltaOp(key, delta)); err != nil {
		return 0, err
	}
	return e.Amount(key)
}

// Sync forces the WAL to stable storage.
func (e *Engine) Sync() error {
	s := &e.stripes[0]
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	if e.log == nil {
		return nil
	}
	return e.log.Sync()
}

// Checkpoint writes a snapshot of the current table and truncates the
// WAL below it. The snapshot records its LSN boundary and recovery
// replays only records above it, so non-idempotent ops (deltas) are
// never applied twice. The snapshot is written to a temp file and
// renamed, so a crash during Checkpoint leaves a consistent pair.
func (e *Engine) Checkpoint() error {
	e.lockAll()
	defer e.unlockAll()
	if e.closed {
		return ErrClosed
	}
	if e.log == nil {
		return nil
	}
	boundary := e.log.NextLSN() - 1 // everything <= boundary is in the snapshot
	// Group commit buffers appends: force everything the snapshot covers
	// to disk before truncation can drop the segments holding it. SyncTo
	// never takes stripe locks, so calling it under lockAll is safe.
	if err := e.log.SyncTo(boundary); err != nil {
		return err
	}
	if err := e.writeSnapshotLocked(boundary); err != nil {
		return err
	}
	return e.log.TruncateBefore(boundary + 1)
}

// writeSnapshotLocked dumps the table to disk atomically (temp +
// rename). The caller holds every stripe lock.
func (e *Engine) writeSnapshotLocked(boundaryLSN uint64) error {
	total := 0
	for i := range e.stripes {
		total += e.stripes[i].mem.Len()
	}
	var body []byte
	body = binary.LittleEndian.AppendUint64(body, boundaryLSN)
	body = binary.AppendUvarint(body, uint64(total))
	e.mergeScan("", func(k string, v []byte) bool {
		body = binary.AppendUvarint(body, uint64(len(k)))
		body = append(body, k...)
		body = binary.AppendUvarint(body, uint64(len(v)))
		body = append(body, v...)
		return true
	})
	out := make([]byte, 0, len(snapMagic)+4+len(body))
	out = append(out, snapMagic...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	out = append(out, body...)
	tmp := filepath.Join(e.opts.Dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(out); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	// The snapshot replaces truncated WAL segments; make it stable
	// before the rename promotes it.
	if !e.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("storage: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return os.Rename(tmp, filepath.Join(e.opts.Dir, snapshotName))
}

// loadSnapshot loads the snapshot if present, returning its boundary LSN
// (0 when there is no snapshot). Runs before any concurrency exists.
func (e *Engine) loadSnapshot() (uint64, error) {
	data, err := os.ReadFile(filepath.Join(e.opts.Dir, snapshotName))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("storage: %w", err)
	}
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return 0, fmt.Errorf("%w: bad snapshot header", ErrCorrupt)
	}
	sum := binary.LittleEndian.Uint32(data[len(snapMagic):])
	body := data[len(snapMagic)+4:]
	if crc32.ChecksumIEEE(body) != sum {
		return 0, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	if len(body) < 8 {
		return 0, fmt.Errorf("%w: snapshot too short", ErrCorrupt)
	}
	boundary := binary.LittleEndian.Uint64(body)
	body = body[8:]
	count, n := binary.Uvarint(body)
	if n <= 0 {
		return 0, fmt.Errorf("%w: snapshot count", ErrCorrupt)
	}
	body = body[n:]
	for i := uint64(0); i < count; i++ {
		kLen, n := binary.Uvarint(body)
		if n <= 0 || kLen > uint64(len(body)-n) {
			return 0, fmt.Errorf("%w: snapshot key", ErrCorrupt)
		}
		key := string(body[n : n+int(kLen)])
		body = body[n+int(kLen):]
		vLen, n := binary.Uvarint(body)
		if n <= 0 || vLen > uint64(len(body)-n) {
			return 0, fmt.Errorf("%w: snapshot value", ErrCorrupt)
		}
		val := append([]byte(nil), body[n:n+int(vLen)]...)
		body = body[n+int(vLen):]
		s := &e.stripes[stripeOf(key)]
		if !s.mem.Put(key, val) &&
			len(key) >= len(MetaPrefix) && key[:len(MetaPrefix)] == MetaPrefix {
			s.metaCount++
		}
	}
	return boundary, nil
}

// Close syncs and closes the engine.
func (e *Engine) Close() error {
	e.lockAll()
	defer e.unlockAll()
	if e.closed {
		return nil
	}
	e.closed = true
	var err error
	if e.epochs != nil {
		// Flush the open epoch (releasing any committers still waiting on
		// its boundary) before the log goes away underneath it.
		err = e.epochs.Close()
	}
	if e.log != nil {
		if cerr := e.log.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
