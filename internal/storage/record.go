// Package storage implements the local database engine each avdb site
// runs: an ordered in-memory table (B+tree) with a write-ahead log and
// snapshot checkpoints for crash recovery. The schema is the paper's SCM
// table — product rows with a numeric stock amount and a regular /
// non-regular classification (which is what decides Delay vs Immediate
// update handling upstream).
//
// Mutations are applied in batches: one batch is one WAL record, so a
// transaction's writes become durable and visible atomically.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Class is a product's consistency classification. In the paper, an AV
// is defined exactly for the Regular products; NonRegular products take
// the Immediate Update path.
type Class uint8

// Product classes.
const (
	Regular Class = iota
	NonRegular
)

// String names the class.
func (c Class) String() string {
	if c == NonRegular {
		return "non-regular"
	}
	return "regular"
}

// Record is one product row.
type Record struct {
	Key    string // primary key, e.g. "product-0042"
	Name   string // display name
	Amount int64  // stock amount — the numeric datum AVs are defined on
	Class  Class
}

// Storage errors.
var (
	ErrNotFound = errors.New("storage: key not found")
	ErrClosed   = errors.New("storage: engine closed")
	ErrCorrupt  = errors.New("storage: corrupt data")
)

// encodeValue serializes the non-key fields of a record.
func encodeValue(r *Record) []byte {
	b := make([]byte, 0, 16+len(r.Name))
	b = binary.AppendVarint(b, r.Amount)
	b = append(b, byte(r.Class))
	b = binary.AppendUvarint(b, uint64(len(r.Name)))
	return append(b, r.Name...)
}

// decodeValue parses a value produced by encodeValue into rec.
func decodeValue(key string, v []byte, rec *Record) error {
	amount, n := binary.Varint(v)
	if n <= 0 {
		return ErrCorrupt
	}
	v = v[n:]
	if len(v) < 1 {
		return ErrCorrupt
	}
	class := Class(v[0])
	v = v[1:]
	nameLen, n := binary.Uvarint(v)
	if n <= 0 || nameLen > uint64(len(v)-n) {
		return ErrCorrupt
	}
	rec.Key = key
	rec.Amount = amount
	rec.Class = class
	rec.Name = string(v[n : n+int(nameLen)])
	return nil
}

// OpKind tags one mutation inside a batch.
type OpKind uint8

// Mutation kinds.
const (
	OpPut OpKind = iota + 1
	OpDelete
	OpDelta
	OpMetaPut
	OpMetaDelete
)

// MetaPrefix namespaces internal metadata rows (replication watermarks,
// outbound delta logs) inside the same tree as user rows, so one Apply
// batch can mutate data and metadata atomically — the property durable
// replication correctness rests on. The prefix sorts before every user
// key, and Scan/Len ignore it.
const MetaPrefix = "\x00m\x00"

// Op is one mutation. For OpPut, Rec carries the full row; for OpDelta,
// Delta is added to the existing row's Amount; OpDelete removes the
// row; OpMetaPut/OpMetaDelete store or remove a raw metadata value
// under MetaPrefix+Key.
type Op struct {
	Kind  OpKind
	Key   string
	Rec   Record
	Delta int64
	Value []byte
}

// PutOp builds an OpPut.
func PutOp(rec Record) Op { return Op{Kind: OpPut, Key: rec.Key, Rec: rec} }

// DeleteOp builds an OpDelete.
func DeleteOp(key string) Op { return Op{Kind: OpDelete, Key: key} }

// DeltaOp builds an OpDelta.
func DeltaOp(key string, delta int64) Op { return Op{Kind: OpDelta, Key: key, Delta: delta} }

// MetaPutOp builds an OpMetaPut.
func MetaPutOp(key string, value []byte) Op { return Op{Kind: OpMetaPut, Key: key, Value: value} }

// MetaDeleteOp builds an OpMetaDelete.
func MetaDeleteOp(key string) Op { return Op{Kind: OpMetaDelete, Key: key} }

// encodeBatch serializes a batch of ops into one WAL payload.
func encodeBatch(ops []Op) []byte {
	b := make([]byte, 0, 32*len(ops))
	b = binary.AppendUvarint(b, uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		b = append(b, byte(op.Kind))
		b = binary.AppendUvarint(b, uint64(len(op.Key)))
		b = append(b, op.Key...)
		switch op.Kind {
		case OpPut:
			val := encodeValue(&op.Rec)
			b = binary.AppendUvarint(b, uint64(len(val)))
			b = append(b, val...)
		case OpDelta:
			b = binary.AppendVarint(b, op.Delta)
		case OpMetaPut:
			b = binary.AppendUvarint(b, uint64(len(op.Value)))
			b = append(b, op.Value...)
		case OpDelete, OpMetaDelete:
			// key only
		}
	}
	return b
}

// decodeBatch parses a WAL payload back into ops.
func decodeBatch(b []byte) ([]Op, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	b = b[n:]
	if count > uint64(len(b))+1 {
		return nil, ErrCorrupt
	}
	ops := make([]Op, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(b) < 1 {
			return nil, ErrCorrupt
		}
		kind := OpKind(b[0])
		b = b[1:]
		keyLen, n := binary.Uvarint(b)
		if n <= 0 || keyLen > uint64(len(b)-n) {
			return nil, ErrCorrupt
		}
		key := string(b[n : n+int(keyLen)])
		b = b[n+int(keyLen):]
		op := Op{Kind: kind, Key: key}
		switch kind {
		case OpPut:
			valLen, n := binary.Uvarint(b)
			if n <= 0 || valLen > uint64(len(b)-n) {
				return nil, ErrCorrupt
			}
			if err := decodeValue(key, b[n:n+int(valLen)], &op.Rec); err != nil {
				return nil, err
			}
			b = b[n+int(valLen):]
		case OpDelta:
			delta, n := binary.Varint(b)
			if n <= 0 {
				return nil, ErrCorrupt
			}
			op.Delta = delta
			b = b[n:]
		case OpMetaPut:
			valLen, n := binary.Uvarint(b)
			if n <= 0 || valLen > uint64(len(b)-n) {
				return nil, ErrCorrupt
			}
			op.Value = append([]byte(nil), b[n:n+int(valLen)]...)
			b = b[n+int(valLen):]
		case OpDelete, OpMetaDelete:
			// nothing further
		default:
			return nil, fmt.Errorf("%w: op kind %d", ErrCorrupt, kind)
		}
		ops = append(ops, op)
	}
	if len(b) != 0 {
		return nil, ErrCorrupt
	}
	return ops, nil
}
