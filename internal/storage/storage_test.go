package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"avdb/internal/rng"
)

func memEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func diskEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPutGet(t *testing.T) {
	e := memEngine(t)
	rec := Record{Key: "p1", Name: "Widget", Amount: 100, Class: Regular}
	if err := e.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, err := e.Get("p1")
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Fatalf("got %+v, want %+v", got, rec)
	}
}

func TestGetMissing(t *testing.T) {
	e := memEngine(t)
	if _, err := e.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestApplyDelta(t *testing.T) {
	e := memEngine(t)
	e.Put(Record{Key: "p", Amount: 50})
	n, err := e.ApplyDelta("p", -20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Fatalf("amount = %d, want 30", n)
	}
	n, _ = e.ApplyDelta("p", 100)
	if n != 130 {
		t.Fatalf("amount = %d, want 130", n)
	}
	if _, err := e.ApplyDelta("ghost", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delta to missing key: %v", err)
	}
}

func TestDelete(t *testing.T) {
	e := memEngine(t)
	e.Put(Record{Key: "p", Amount: 1})
	if err := e.Delete("p"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get("p"); !errors.Is(err, ErrNotFound) {
		t.Fatal("record survived delete")
	}
	if err := e.Delete("p"); err != nil {
		t.Fatalf("deleting absent key: %v", err)
	}
}

func TestBatchAtomicValidation(t *testing.T) {
	e := memEngine(t)
	e.Put(Record{Key: "a", Amount: 10})
	err := e.Apply(
		DeltaOp("a", 5),
		DeltaOp("missing", 1), // invalid: whole batch must be rejected
	)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if n, _ := e.Amount("a"); n != 10 {
		t.Fatalf("partial batch applied: amount = %d", n)
	}
}

func TestBatchPutThenDeltaSameKey(t *testing.T) {
	e := memEngine(t)
	err := e.Apply(
		PutOp(Record{Key: "new", Amount: 100}),
		DeltaOp("new", -30),
	)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := e.Amount("new"); n != 70 {
		t.Fatalf("amount = %d, want 70", n)
	}
}

func TestBatchDeleteThenDeltaRejected(t *testing.T) {
	e := memEngine(t)
	e.Put(Record{Key: "k", Amount: 5})
	if err := e.Apply(DeleteOp("k"), DeltaOp("k", 1)); err == nil {
		t.Fatal("delta after delete in batch accepted")
	}
}

func TestScanOrdered(t *testing.T) {
	e := memEngine(t)
	for i := 9; i >= 0; i-- {
		e.Put(Record{Key: fmt.Sprintf("p%d", i), Amount: int64(i)})
	}
	var keys []string
	if err := e.Scan(func(r Record) bool { keys = append(keys, r.Key); return true }); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 10 || keys[0] != "p0" || keys[9] != "p9" {
		t.Fatalf("scan keys = %v", keys)
	}
	if e.Len() != 10 {
		t.Fatalf("Len = %d", e.Len())
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	e := diskEngine(t, dir)
	e.Put(Record{Key: "p1", Name: "Gadget", Amount: 100, Class: NonRegular})
	e.ApplyDelta("p1", -30)
	e.Put(Record{Key: "p2", Amount: 7})
	e.Delete("p2")
	e.Close()

	e2 := diskEngine(t, dir)
	defer e2.Close()
	rec, err := e2.Get("p1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Amount != 70 || rec.Name != "Gadget" || rec.Class != NonRegular {
		t.Fatalf("recovered record %+v", rec)
	}
	if _, err := e2.Get("p2"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted record resurrected by recovery")
	}
}

func TestRecoveryWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e := diskEngine(t, dir)
	for i := 0; i < 100; i++ {
		e.Put(Record{Key: fmt.Sprintf("p%03d", i), Amount: int64(i)})
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutations land in the WAL only.
	e.ApplyDelta("p050", 1000)
	e.Delete("p099")
	e.Close()

	e2 := diskEngine(t, dir)
	defer e2.Close()
	if n, _ := e2.Amount("p050"); n != 1050 {
		t.Fatalf("p050 = %d, want 1050", n)
	}
	if _, err := e2.Get("p099"); !errors.Is(err, ErrNotFound) {
		t.Fatal("p099 survived")
	}
	if e2.Len() != 99 {
		t.Fatalf("Len = %d, want 99", e2.Len())
	}
}

func TestCheckpointIsNotReplayedTwice(t *testing.T) {
	// Deltas are not idempotent: if the snapshot boundary were wrong,
	// recovery would double-apply. Checkpoint then reopen repeatedly.
	dir := t.TempDir()
	e := diskEngine(t, dir)
	e.Put(Record{Key: "k", Amount: 0})
	for round := 0; round < 5; round++ {
		e.ApplyDelta("k", 10)
		if err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		e.ApplyDelta("k", 1)
		e.Close()
		e = diskEngine(t, dir)
		want := int64((round + 1) * 11)
		if n, _ := e.Amount("k"); n != want {
			t.Fatalf("round %d: amount = %d, want %d", round, n, want)
		}
	}
	e.Close()
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	e := diskEngine(t, dir)
	e.Put(Record{Key: "k", Amount: 5})
	e.Checkpoint()
	e.Close()
	path := filepath.Join(dir, snapshotName)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0x01
	os.WriteFile(path, data, 0o644)
	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot opened: %v", err)
	}
}

func TestClosedEngineRejects(t *testing.T) {
	e, _ := Open(Options{})
	e.Close()
	if err := e.Put(Record{Key: "k"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close: %v", err)
	}
	if _, err := e.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	f := func(key, name string, amount int64, classBit bool) bool {
		class := Regular
		if classBit {
			class = NonRegular
		}
		in := Record{Key: key, Name: name, Amount: amount, Class: class}
		var out Record
		if err := decodeValue(key, encodeValue(&in), &out); err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	ops := []Op{
		PutOp(Record{Key: "a", Name: "A", Amount: -5, Class: NonRegular}),
		DeltaOp("b", 12345),
		DeleteOp("c"),
		DeltaOp("", -1),
	}
	got, err := decodeBatch(encodeBatch(ops))
	if err != nil {
		t.Fatal(err)
	}
	// PutOp normalizes Rec.Key on apply, compare field-wise.
	if len(got) != len(ops) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range ops {
		if got[i].Kind != ops[i].Kind || got[i].Key != ops[i].Key || got[i].Delta != ops[i].Delta {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
	if got[0].Rec.Name != "A" || got[0].Rec.Amount != -5 {
		t.Fatalf("put rec = %+v", got[0].Rec)
	}
}

func TestBatchCodecRejectsGarbage(t *testing.T) {
	valid := encodeBatch([]Op{DeltaOp("key", 7)})
	for n := 0; n < len(valid); n++ {
		if _, err := decodeBatch(valid[:n]); err == nil {
			t.Fatalf("truncation to %d accepted", n)
		}
	}
	if _, err := decodeBatch(append(valid, 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestQuickRecoveryEqualsLiveState drives random op sequences against a
// disk engine, crashes (close) at a random point, reopens, and verifies
// the recovered state matches a shadow map.
func TestQuickRecoveryEqualsLiveState(t *testing.T) {
	f := func(seed uint64) bool {
		dir, err := os.MkdirTemp("", "storq")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		e, err := Open(Options{Dir: dir, NoSync: true, SegmentMaxBytes: 256})
		if err != nil {
			return false
		}
		r := rng.New(seed)
		shadow := map[string]int64{}
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("k%02d", r.Intn(20))
			switch r.Intn(4) {
			case 0:
				amt := r.Range(0, 1000)
				e.Put(Record{Key: k, Amount: amt})
				shadow[k] = amt
			case 1:
				if _, ok := shadow[k]; ok {
					d := r.Range(-50, 50)
					e.ApplyDelta(k, d)
					shadow[k] += d
				}
			case 2:
				e.Delete(k)
				delete(shadow, k)
			case 3:
				if r.Bool(0.2) {
					if err := e.Checkpoint(); err != nil {
						return false
					}
				}
			}
		}
		e.Close()
		e2, err := Open(Options{Dir: dir})
		if err != nil {
			return false
		}
		defer e2.Close()
		if e2.Len() != len(shadow) {
			return false
		}
		for k, want := range shadow {
			if got, err := e2.Amount(k); err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkApplyDeltaMemory(b *testing.B) {
	e, _ := Open(Options{})
	defer e.Close()
	e.Put(Record{Key: "k", Amount: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ApplyDelta("k", 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyDeltaWAL(b *testing.B) {
	e, err := Open(Options{Dir: b.TempDir(), NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	e.Put(Record{Key: "k", Amount: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ApplyDelta("k", 1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMetaPutGetDelete(t *testing.T) {
	e := memEngine(t)
	if err := e.Apply(MetaPutOp("repl/applied/1", []byte{7})); err != nil {
		t.Fatal(err)
	}
	v, ok, err := e.GetMeta("repl/applied/1")
	if err != nil || !ok || len(v) != 1 || v[0] != 7 {
		t.Fatalf("meta = %v %v %v", v, ok, err)
	}
	if _, ok, _ := e.GetMeta("missing"); ok {
		t.Fatal("missing meta found")
	}
	if err := e.Apply(MetaDeleteOp("repl/applied/1")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := e.GetMeta("repl/applied/1"); ok {
		t.Fatal("meta survived delete")
	}
}

func TestMetaInvisibleToUserAPI(t *testing.T) {
	e := memEngine(t)
	e.Put(Record{Key: "user", Amount: 1})
	e.Apply(MetaPutOp("m1", []byte("x")), MetaPutOp("m2", []byte("y")))
	if e.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (meta excluded)", e.Len())
	}
	var keys []string
	e.Scan(func(r Record) bool { keys = append(keys, r.Key); return true })
	if len(keys) != 1 || keys[0] != "user" {
		t.Fatalf("scan = %v", keys)
	}
	// Overwrite does not double-count.
	e.Apply(MetaPutOp("m1", []byte("z")))
	if e.Len() != 1 {
		t.Fatalf("Len after meta overwrite = %d", e.Len())
	}
}

func TestMetaScanPrefix(t *testing.T) {
	e := memEngine(t)
	e.Apply(
		MetaPutOp("log/00001", []byte("a")),
		MetaPutOp("log/00002", []byte("b")),
		MetaPutOp("other/x", []byte("c")),
	)
	var got []string
	e.ScanMeta("log/", func(k string, v []byte) bool {
		got = append(got, k+"="+string(v))
		return true
	})
	if len(got) != 2 || got[0] != "log/00001=a" || got[1] != "log/00002=b" {
		t.Fatalf("scanMeta = %v", got)
	}
}

func TestMetaAtomicWithData(t *testing.T) {
	// A batch mixing a delta and a watermark either fully applies or not.
	e := memEngine(t)
	e.Put(Record{Key: "k", Amount: 100})
	if err := e.Apply(DeltaOp("k", -10), MetaPutOp("wm", []byte{1})); err != nil {
		t.Fatal(err)
	}
	if n, _ := e.Amount("k"); n != 90 {
		t.Fatalf("amount = %d", n)
	}
	if _, ok, _ := e.GetMeta("wm"); !ok {
		t.Fatal("watermark missing")
	}
	// Invalid batch: neither the delta nor the meta lands.
	err := e.Apply(DeltaOp("ghost", 1), MetaPutOp("wm2", []byte{2}))
	if err == nil {
		t.Fatal("bad batch accepted")
	}
	if _, ok, _ := e.GetMeta("wm2"); ok {
		t.Fatal("meta from rejected batch applied")
	}
}

func TestMetaSurvivesRecoveryAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e := diskEngine(t, dir)
	e.Put(Record{Key: "k", Amount: 5})
	e.Apply(MetaPutOp("wm", []byte{42}))
	e.Checkpoint()
	e.Apply(MetaPutOp("wm2", []byte{43}))
	e.Close()
	e2 := diskEngine(t, dir)
	defer e2.Close()
	if v, ok, _ := e2.GetMeta("wm"); !ok || v[0] != 42 {
		t.Fatalf("wm = %v %v", v, ok)
	}
	if v, ok, _ := e2.GetMeta("wm2"); !ok || v[0] != 43 {
		t.Fatalf("wm2 = %v %v", v, ok)
	}
	if e2.Len() != 1 {
		t.Fatalf("Len = %d after recovery (meta leaked into count)", e2.Len())
	}
}

func TestUserKeyCannotEnterMetaNamespace(t *testing.T) {
	e := memEngine(t)
	if err := e.Put(Record{Key: MetaPrefix + "sneaky", Amount: 1}); err == nil {
		t.Fatal("user row in meta namespace accepted")
	}
}

func TestApplyObserverSeesEveryBatchWithDenseLSNs(t *testing.T) {
	e := memEngine(t)
	var got []uint64
	var opCounts []int
	e.SetApplyObserver(func(lsn uint64, ops []Op) {
		got = append(got, lsn)
		opCounts = append(opCounts, len(ops))
	})
	if err := e.Put(Record{Key: "a", Amount: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Apply(DeltaOp("a", 2), MetaPutOp("wm", []byte{1})); err != nil {
		t.Fatal(err)
	}
	if err := e.Apply(MetaPutOp("wm", []byte{2})); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("observer LSNs = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(opCounts, []int{1, 2, 1}) {
		t.Fatalf("observer op counts = %v", opCounts)
	}
	if e.LastLSN() != 3 {
		t.Fatalf("LastLSN = %d, want 3", e.LastLSN())
	}
}

func TestLastLSNSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	e := diskEngine(t, dir)
	for i := 0; i < 5; i++ {
		if err := e.Put(Record{Key: fmt.Sprintf("k%d", i), Amount: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	last := e.LastLSN()
	if last != 5 {
		t.Fatalf("LastLSN = %d, want 5", last)
	}
	e.Close()
	e2 := diskEngine(t, dir)
	defer e2.Close()
	if e2.LastLSN() != last {
		t.Fatalf("LastLSN after recovery = %d, want %d", e2.LastLSN(), last)
	}
	// New batches continue the same sequence.
	if err := e2.Put(Record{Key: "k5", Amount: 5}); err != nil {
		t.Fatal(err)
	}
	if e2.LastLSN() != last+1 {
		t.Fatalf("LastLSN after new batch = %d, want %d", e2.LastLSN(), last+1)
	}
}

func TestSnapshotAmountsConsistentPair(t *testing.T) {
	e := memEngine(t)
	if err := e.Put(Record{Key: "a", Amount: 10}); err != nil {
		t.Fatal(err)
	}
	if err := e.Apply(PutOp(Record{Key: "b", Amount: 20}), MetaPutOp("wm", []byte{1})); err != nil {
		t.Fatal(err)
	}
	amounts, lsn, err := e.SnapshotAmounts()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != e.LastLSN() {
		t.Fatalf("snapshot lsn = %d, engine lsn = %d", lsn, e.LastLSN())
	}
	want := map[string]int64{"a": 10, "b": 20}
	if !reflect.DeepEqual(amounts, want) {
		t.Fatalf("amounts = %v, want %v (meta rows must be excluded)", amounts, want)
	}
}
