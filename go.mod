module avdb

go 1.22
