// TCP cluster: three complete avdb sites in one process, but talking
// through real loopback TCP sockets — the same stack cmd/avnode deploys
// across machines. Demonstrates that the accelerator protocol is a real
// network protocol, not an in-memory shortcut.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"avdb/internal/site"
	"avdb/internal/storage"
	"avdb/internal/transport"
	"avdb/internal/transport/tcpnet"
	"avdb/internal/wire"
)

// lateBoundNetwork lets the TCP node be opened (to learn its port)
// before the site that will handle its messages exists.
type lateBoundNetwork struct {
	node    *tcpnet.Node
	mu      *sync.Mutex
	handler *transport.Handler
}

func (n *lateBoundNetwork) Open(id wire.SiteID, h transport.Handler) (transport.Node, error) {
	n.mu.Lock()
	*n.handler = h
	n.mu.Unlock()
	return n.node, nil
}

func main() {
	const n = 3
	ctx := context.Background()

	var mu sync.Mutex
	handlers := make([]transport.Handler, n)
	nodes := make([]*tcpnet.Node, n)
	for i := 0; i < n; i++ {
		idx := i
		node, err := tcpnet.Open(tcpnet.Config{ID: wire.SiteID(i), Listen: "127.0.0.1:0"},
			func(ctx context.Context, from wire.SiteID, msg wire.Message) wire.Message {
				mu.Lock()
				h := handlers[idx]
				mu.Unlock()
				if h == nil {
					return nil
				}
				return h(ctx, from, msg)
			})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
		fmt.Printf("site %d listening on %s\n", i, node.Addr())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				nodes[i].AddPeer(wire.SiteID(j), nodes[j].Addr())
			}
		}
	}

	sites := make([]*site.Site, n)
	for i := 0; i < n; i++ {
		idx := i
		var peers []wire.SiteID
		for p := 0; p < n; p++ {
			if p != i {
				peers = append(peers, wire.SiteID(p))
			}
		}
		s, err := site.Open(site.Config{
			ID: wire.SiteID(i), Base: 0, Peers: peers,
			LockTimeout: 2 * time.Second, PrepareTimeout: 2 * time.Second,
		}, &lateBoundNetwork{node: nodes[idx], mu: &mu, handler: &handlers[idx]})
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		if err := s.Seed(storage.Record{Key: "gadget", Amount: 600, Class: storage.Regular}); err != nil {
			log.Fatal(err)
		}
		if err := s.DefineAV("gadget", 200); err != nil {
			log.Fatal(err)
		}
		sites[i] = s
	}

	// A local Delay Update — no sockets touched.
	if _, err := sites[1].Update(ctx, "gadget", -150); err != nil {
		log.Fatal(err)
	}
	fmt.Println("site 1 sold 150 gadgets locally (within its AV)")

	// This one exceeds site 1's remaining AV of 50: the AV request and
	// grant travel over real TCP.
	res, err := sites[1].Update(ctx, "gadget", -200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("site 1 sold 200 more: %d AV units transferred over TCP in %d round(s)\n",
		res.Transferred, res.Rounds)

	// Converge and report.
	for _, s := range sites {
		if err := s.Flush(ctx); err != nil {
			log.Fatal(err)
		}
	}
	for i, s := range sites {
		v, _ := s.Read("gadget")
		fmt.Printf("site %d sees gadget stock = %d\n", i, v)
	}
}
