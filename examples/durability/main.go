// Durability: a site's database, allowable volume, and replication
// state all survive a restart. The cluster sells stock, "crashes"
// (closes), reopens from disk, and carries on — without minting AV,
// resetting stock, or re-sending already-delivered deltas.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"avdb"
)

func main() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "avdb-durability")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := avdb.Config{Sites: 2, Dir: dir, PersistAV: true, NoSync: true}

	// --- first life ---
	c, err := avdb.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.AddProduct(avdb.Product{Key: "widget", Amount: 1000, Class: avdb.Regular}); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Update(ctx, 1, "widget", -60); err != nil {
			log.Fatal(err)
		}
	}
	v, _ := c.Read(1, "widget")
	av1, _ := c.AV(1, "widget")
	fmt.Printf("before crash: site1 stock=%d AV=%d (sold 300 of its 500 allocation)\n", v, av1)
	if err := c.Close(); err != nil { // the "crash"
		log.Fatal(err)
	}

	// --- second life ---
	c2, err := avdb.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer c2.Close()
	// Re-registering the catalog is idempotent on a durable cluster.
	if err := c2.AddProduct(avdb.Product{Key: "widget", Amount: 1000, Class: avdb.Regular}); err != nil {
		log.Fatal(err)
	}
	v, _ = c2.Read(1, "widget")
	av2, _ := c2.AV(1, "widget")
	fmt.Printf("after restart: site1 stock=%d AV=%d (nothing lost, nothing minted)\n", v, av2)

	// The deltas committed before the crash still propagate.
	if err := c2.Sync(ctx); err != nil {
		log.Fatal(err)
	}
	v0, _ := c2.Read(0, "widget")
	fmt.Printf("after sync:   site0 sees stock=%d\n", v0)

	// And business continues within the recovered AV.
	if _, err := c2.Update(ctx, 1, "widget", -200); err != nil {
		log.Fatal(err)
	}
	fmt.Println("post-restart sale of 200 completed from recovered AV")
	// The next sale exceeds site 1's recovered allocation, so the
	// accelerator transfers AV from site 0 — the recovered table is a
	// live participant, not a read-only snapshot.
	res, err := c2.Update(ctx, 1, "widget", -10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sale beyond the local allocation used path=%s (AV transferred: %d)\n",
		res.Path, res.Transferred)
}
