// E-money: the domain of the paper's reference [1] (Kawazoe, Shibuya,
// Tokuyama, SODA '99), whose money-distribution policy the accelerator
// adopts. A bank's branches share a float of electronic money; customer
// withdrawals must be instant (Delay Updates funded by each branch's
// allowable volume), deposits mint local capacity, and the float
// migrates between branches on demand — with a demand-aware branch
// policy that keeps a cushion for its own expected withdrawals.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"avdb/internal/cluster"
	"avdb/internal/core"
	"avdb/internal/metrics"
	"avdb/internal/rng"
	"avdb/internal/strategy"
)

func main() {
	ctx := context.Background()
	reg := metrics.NewRegistry()
	const branches = 5
	const float = 100000 // shared e-money float

	c, err := cluster.New(cluster.Config{
		Sites:         branches,
		Items:         1, // a single datum: the bank's e-money float
		InitialAmount: float,
		Registry:      reg,
		Seed:          9,
		CallTimeout:   2 * time.Second,
		PolicyFor: func(site int) (strategy.Policy, core.DemandObserver) {
			m := strategy.NewMeter(0.3)
			return strategy.Policy{
				Selector: strategy.MaxKnown{},
				Decider:  strategy.GrantDemandAware{Meter: m, Horizon: 6},
			}, m
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	money := c.RegularKeys[0]

	// A day of branch traffic: branch 0 (head office) takes most of the
	// deposits; the others serve withdrawals of varying intensity.
	r := rng.New(77)
	withdrawals, deposits, refused := 0, 0, 0
	for i := 0; i < 4000; i++ {
		branch := r.Intn(branches)
		if branch == 0 || r.Bool(0.25) {
			if _, err := c.Update(ctx, branch, money, r.Range(10, 400)); err != nil {
				log.Fatal(err)
			}
			deposits++
			continue
		}
		// Hot branches withdraw much harder than cold ones.
		max := int64(80)
		if branch == 1 {
			max = 400
		}
		if _, err := c.Update(ctx, branch, money, -r.Range(10, max)); err != nil {
			refused++ // the whole float is exhausted: correctly refused
		} else {
			withdrawals++
		}
	}

	fmt.Printf("traffic: %d withdrawals, %d deposits, %d refused (float exhausted)\n",
		withdrawals, deposits, refused)
	fmt.Printf("correspondences: %d (%.3f per operation)\n",
		reg.TotalCorrespondences(), float64(reg.TotalCorrespondences())/4000)

	var localSum, transferSum int64
	for _, s := range c.Sites {
		st := s.Accelerator().Stats()
		localSum += st.DelayLocal.Load()
		transferSum += st.DelayTransfer.Load()
	}
	fmt.Printf("instant (local) operations: %.1f%%\n",
		100*float64(localSum)/float64(localSum+transferSum))

	if err := c.FlushAll(ctx); err != nil {
		log.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		log.Fatalf("reconciliation FAILED: %v", err)
	}
	v, _ := c.Read(0, money)
	fmt.Printf("end-of-day reconciliation: every branch agrees the float is %d\n", v)
	fmt.Println("and the sum of branch allowances equals it exactly — no money")
	fmt.Println("was created or destroyed by the autonomous branch updates.")

	fmt.Println("\nfinal allowance distribution (who holds the float):")
	for i, s := range c.Sites {
		fmt.Printf("  branch %d: %6d\n", i, s.AV().Avail(money))
	}
}
