// Quickstart: a three-site avdb cluster, one regular product, one
// made-to-order product — showing both update disciplines and the AV
// mechanics of the paper's Fig. 1 through the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"avdb"
)

func main() {
	ctx := context.Background()

	// One maker (site 0) and two retailers (sites 1, 2).
	c, err := avdb.New(avdb.Config{Sites: 3, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Fig. 1's setup: product A with 100 units of stock; AV 40/20/40.
	if err := c.AddProductAV(
		avdb.Product{Key: "product-A", Name: "Product A", Amount: 100, Class: avdb.Regular},
		[]int64{40, 20, 40},
	); err != nil {
		log.Fatal(err)
	}
	// A made-to-order product with no AV: strongly consistent updates.
	if err := c.AddProduct(
		avdb.Product{Key: "custom-B", Name: "Custom B", Amount: 0, Class: avdb.NonRegular},
	); err != nil {
		log.Fatal(err)
	}

	// A small sale at site 2 fits its AV: zero communication.
	res, err := c.Update(ctx, 2, "product-A", -10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("site 2 sells 10 of product-A: path=%s rounds=%d correspondences=%d\n",
		res.Path, res.Rounds, c.Correspondences())

	// Fig. 1's update: site 1 sells 30 but holds only AV 20 — the
	// accelerator requests a transfer, then completes locally.
	res, err = c.Update(ctx, 1, "product-A", -30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("site 1 sells 30 of product-A: path=%s rounds=%d transferred=%d\n",
		res.Path, res.Rounds, res.Transferred)

	// The value converges lazily.
	before, _ := c.Read(0, "product-A")
	if err := c.Sync(ctx); err != nil {
		log.Fatal(err)
	}
	after, _ := c.Read(0, "product-A")
	fmt.Printf("maker's view of product-A: %d before sync, %d after (global truth: 60)\n",
		before, after)

	// The non-regular product updates through Immediate Update: all
	// sites agree instantly, at the price of a 2PC round.
	res, err = c.Update(ctx, 1, "custom-B", +5)
	if err != nil {
		log.Fatal(err)
	}
	v0, _ := c.Read(0, "custom-B")
	v2, _ := c.Read(2, "custom-B")
	fmt.Printf("custom-B made via %s: site0=%d site2=%d (no sync needed)\n", res.Path, v0, v2)

	fmt.Printf("total correspondences for the whole session: %d\n", c.Correspondences())
}
