// Fault tolerance: the paper's availability argument, live. A retailer
// is cut off from the network; Delay Updates funded by its local
// Allowable Volume keep succeeding, Immediate Updates abort, and after
// the partition heals everything converges with nothing lost.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"avdb"
)

func main() {
	ctx := context.Background()
	c, err := avdb.New(avdb.Config{Sites: 3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// A well-stocked regular product (AV split 300/300/300) and a
	// strongly consistent one.
	if err := c.AddProduct(avdb.Product{Key: "stocked", Amount: 900, Class: avdb.Regular}); err != nil {
		log.Fatal(err)
	}
	if err := c.AddProduct(avdb.Product{Key: "strict", Amount: 100, Class: avdb.NonRegular}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- partitioning retailer 2 away from the cluster ---")
	if err := c.Isolate(2); err != nil {
		log.Fatal(err)
	}

	// Delay Updates within the local AV survive the partition.
	sold := 0
	for i := 0; i < 10; i++ {
		if _, err := c.Update(ctx, 2, "stocked", -20); err != nil {
			fmt.Printf("sale %d failed: %v\n", i, err)
			break
		}
		sold += 20
	}
	fmt.Printf("isolated retailer kept selling: %d units of 'stocked' moved offline\n", sold)

	// Beyond the local AV, the retailer would need peers — that fails,
	// but cleanly, and nothing is lost.
	if _, err := c.Update(ctx, 2, "stocked", -200); errors.Is(err, avdb.ErrInsufficientAV) {
		fmt.Println("sale beyond local AV correctly refused (peers unreachable)")
	}

	// Immediate Updates need every site: they abort during the partition.
	if _, err := c.Update(ctx, 2, "strict", -1); errors.Is(err, avdb.ErrAborted) {
		fmt.Println("strongly consistent update correctly aborted during the partition")
	}

	fmt.Println("--- healing the partition ---")
	c.Heal()
	if err := c.Sync(ctx); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		v, _ := c.Read(i, "stocked")
		fmt.Printf("site %d now sees stocked = %d\n", i, v)
	}
	if _, err := c.Update(ctx, 2, "strict", -1); err != nil {
		log.Fatal(err)
	}
	v, _ := c.Read(0, "strict")
	fmt.Printf("strict product updates flow again after heal: %d\n", v)
}
