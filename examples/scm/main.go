// SCM: the paper's supply-chain scenario end to end. A maker and two
// retailers share a catalog of regular (stocked) and non-regular
// (made-to-order) products; a day of customer orders flows through the
// accelerator, and the run ends with a consistency audit.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"avdb/internal/cluster"
	"avdb/internal/metrics"
	"avdb/internal/rng"
	"avdb/internal/scm"
)

func main() {
	ctx := context.Background()
	reg := metrics.NewRegistry()

	c, err := cluster.New(cluster.Config{
		Sites:              3,
		Items:              8,
		InitialAmount:      500,
		NonRegularFraction: 0.25, // 2 of 8 products are made to order
		Registry:           reg,
		CallTimeout:        2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	market := scm.NewMarket(scm.Config{BatchSize: 400}, c)
	r := rng.New(2026)

	fmt.Println("processing 500 customer orders across 2 retailers...")
	outcomes := map[scm.Outcome]int{}
	allKeys := append(append([]string{}, c.RegularKeys...), c.NonRegularKeys...)
	for i := 0; i < 500; i++ {
		retailer := 1 + r.Intn(2)
		key := allKeys[r.Intn(len(allKeys))]
		qty := r.Range(1, 25)
		out, err := market.CustomerOrder(ctx, retailer, key, qty)
		if err != nil {
			log.Fatalf("order %d (%s x%d at site %d): %v", i, key, qty, retailer, err)
		}
		outcomes[out]++
	}

	fmt.Println("\norder outcomes:")
	for _, o := range []scm.Outcome{scm.FromStock, scm.Replenished, scm.MadeToOrder} {
		fmt.Printf("  %-13s %d\n", o, outcomes[o])
	}

	fmt.Printf("\ncorrespondences for the whole day: %d (%.3f per order)\n",
		reg.TotalCorrespondences(), float64(reg.TotalCorrespondences())/500)

	// End-of-day: converge the lazy replicas and audit the books.
	if err := c.FlushAll(ctx); err != nil {
		log.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		log.Fatalf("audit FAILED: %v", err)
	}
	fmt.Println("\nend-of-day audit: every replica agrees, and for every regular")
	fmt.Println("product the system-wide allowable volume equals the stock —")
	fmt.Println("no unit was created or lost by the autonomous updates.")

	fmt.Println("\nclosing stock (as the maker sees it):")
	for _, key := range c.RegularKeys {
		v, _ := c.Read(0, key)
		fmt.Printf("  %-14s %5d\n", key, v)
	}
}
